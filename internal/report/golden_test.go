package report

// Golden regression layer for the experiment harness: every registered
// figure/table ID gets (1) a pinned Output fixture under testdata/, and
// (2) a companion invariant check that must hold for ANY valid run —
// so a regenerated fixture that violates its invariants is rejected as
// wrong behavior, not accepted as a new baseline.
//
// Regenerate fixtures with `make golden` after intentional behavioral
// changes (see internal/testutil/README.md).

import (
	"crypto/sha256"
	"fmt"
	"math"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/testutil"
)

// canonicalOutput renders an Output into the canonical golden text:
// the String() block (ID, title, paper line, rows, sorted metrics)
// followed by one line per attached SVG. SVG bodies are large and
// volatile in layout, so they are pinned by content hash + size rather
// than inlined.
func canonicalOutput(o *Output) string {
	var b strings.Builder
	b.WriteString(o.String())
	if len(o.SVGs) > 0 {
		names := make([]string, 0, len(o.SVGs))
		for n := range o.SVGs {
			names = append(names, n)
		}
		sort.Strings(names)
		b.WriteString("svgs:\n")
		for _, n := range names {
			sum := sha256.Sum256([]byte(o.SVGs[n]))
			fmt.Fprintf(&b, "  %s sha256=%x bytes=%d\n", n, sum[:8], len(o.SVGs[n]))
		}
	}
	return b.String()
}

// TestGoldenOutputs pins every registered experiment's Output against
// testdata/<id>.golden.txt. Each experiment is run twice and the two
// renderings compared first, so in-process nondeterminism (map
// iteration, unsorted collection) is reported as such instead of as a
// flaky fixture mismatch.
func TestGoldenOutputs(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness is slow")
	}
	env := testEnv(t)
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			first := canonicalOutput(e.Run(env))
			second := canonicalOutput(e.Run(env))
			if first != second {
				t.Fatalf("%s is nondeterministic across in-process runs:\n%s",
					e.ID, testutil.Diff(first, second))
			}
			testutil.GoldenString(t, filepath.Join("testdata", e.ID+".golden.txt"), first)
		})
	}
}

// metricInvariants maps every experiment ID to checks that any valid
// Output must satisfy. These are the companions to the fixtures above:
// shares live in [0,1], lifetimes and spends are non-negative, indicator
// metrics are 0/1, derived ratios agree with their inputs.
var metricInvariants = map[string]func(t *testing.T, o *Output){
	"fig1": func(t *testing.T, o *Output) {
		inUnit(t, o, "share_first_month", "share_last_month", "share_min", "share_max")
		lo, hi := o.Metrics["share_min"], o.Metrics["share_max"]
		for _, k := range []string{"share_first_month", "share_last_month"} {
			if v := o.Metrics[k]; v < lo-1e-9 || v > hi+1e-9 {
				t.Errorf("%s=%v outside [share_min=%v, share_max=%v]", k, v, lo, hi)
			}
		}
	},
	"table1": func(t *testing.T, o *Output) {
		prefixed(t, o, "top_share_", func(k string, v float64) {
			unitInterval(t, k, v)
		})
		prefixed(t, o, "top_is_US_", func(k string, v float64) {
			indicator(t, k, v)
		})
	},
	"fig2": func(t *testing.T, o *Output) {
		nonNeg(t, o, "median_account_lifetime_y1_days", "median_account_lifetime_y2_days",
			"p90_ad_lifetime_y1_days", "p90_ad_lifetime_y2_days")
		inUnit(t, o, "preads_shutdown_share")
	},
	"fig3": func(t *testing.T, o *Output) {
		nonNeg(t, o, "inwindow_spend_early_mean", "inwindow_spend_late_mean",
			"inwindow_spend_late_over_early", "outwindow_over_inwindow_spend")
	},
	"fig4": func(t *testing.T, o *Output) {
		// The top decile by a metric can never hold less of that metric
		// than a uniform decile would.
		for _, k := range []string{"top10pct_spend_share", "top10pct_click_share"} {
			unitInterval(t, k, o.Metrics[k])
			if o.Metrics[k] < 0.10 {
				t.Errorf("%s=%v below the uniform floor 0.10", k, o.Metrics[k])
			}
		}
	},
	"fig5": func(t *testing.T, o *Output) {
		nonNeg(t, o, "median_rate_fraud", "median_rate_nonfraud",
			"fraud_over_nonfraud_median_rate", "fraud_over_nonfraud_p10_rate")
	},
	"fig6": func(t *testing.T, o *Output) {
		nonNeg(t, o, "highest_bucket_fraud_over_nonfraud")
	},
	"fig7": func(t *testing.T, o *Output) {
		prefixed(t, o, "median_", func(k string, v float64) {
			if v < 0 {
				t.Errorf("%s=%v negative (counts of created entities)", k, v)
			}
		})
	},
	"fig8": func(t *testing.T, o *Output) {
		nonNeg(t, o, "techsupport_spend_before_ban", "techsupport_spend_after_ban",
			"techsupport_after_over_before")
		inUnit(t, o, "techsupport_share_before_ban")
	},
	"table2": func(t *testing.T, o *Output) {
		if o.Metrics["categories"] != 5 {
			t.Errorf("categories=%v, taxonomy has 5", o.Metrics["categories"])
		}
	},
	"table3": func(t *testing.T, o *Output) {
		inUnit(t, o, "top_share_of_fraud", "us_share_of_country", "br_share_of_country")
		indicator(t, "top_is_US", o.Metrics["top_is_US"])
	},
	"table4": func(t *testing.T, o *Output) {
		// Each side's match-type shares form a distribution.
		for _, side := range []string{"fraud_share_", "nonfraud_share_"} {
			sum := 0.0
			prefixed(t, o, side, func(k string, v float64) {
				unitInterval(t, k, v)
				sum += v
			})
			if sum > 0 && math.Abs(sum-1) > 1e-6 {
				t.Errorf("%s* shares sum to %v, want 1", side, sum)
			}
		}
	},
	"fig9": func(t *testing.T, o *Output) {
		prefixed(t, o, "median_", func(k string, v float64) {
			if strings.Contains(k, "_share_") {
				unitInterval(t, k, v)
			} else if v < 0 { // *_bid_* medians
				t.Errorf("%s=%v negative bid", k, v)
			}
		})
		inUnit(t, o, "zero_exact_share_fraud", "zero_exact_share_nonfraud")
	},
	"fig10": clickRateInvariants,
	"fig11": clickRateInvariants,
	"fig12": positionInvariants,
	"fig13": positionInvariants,
	"fig14": ctrImpactInvariants,
	"fig15": cpcImpactInvariants,
	"fig16": ctrImpactInvariants,
	"fig17": cpcImpactInvariants,
	"ext1": func(t *testing.T, o *Output) {
		inUnit(t, o, "auc_all_fraud", "auc_successful_fraud")
		all, top, drop := o.Metrics["auc_all_fraud"], o.Metrics["auc_successful_fraud"], o.Metrics["auc_drop"]
		if math.Abs(all-top-drop) > 1e-9 {
			t.Errorf("auc_drop=%v != auc_all_fraud-auc_successful_fraud=%v", drop, all-top)
		}
	},
	"ext2": func(t *testing.T, o *Output) {
		inUnit(t, o, "repeat_share_last_half", "repeat_share_first_half")
		nonNeg(t, o, "median_life_fresh_days", "median_life_repeat_days")
	},
}

// clickRateInvariants: figs 10/11 report per-account rate distributions;
// a p95 can never undercut the median of the same distribution.
func clickRateInvariants(t *testing.T, o *Output) {
	nonNeg(t, o, "median_fraud", "median_nonfraud", "p95_nonfraud")
	if o.Metrics["p95_nonfraud"] < o.Metrics["median_nonfraud"] {
		t.Errorf("p95_nonfraud=%v below median_nonfraud=%v",
			o.Metrics["p95_nonfraud"], o.Metrics["median_nonfraud"])
	}
}

// positionInvariants: figs 12/13 report SERP position histograms with
// 1-based slots.
func positionInvariants(t *testing.T, o *Output) {
	inUnit(t, o, "top_pos_share_organic", "top_pos_share_influenced")
	for _, k := range []string{"median_pos_organic", "median_pos_influenced"} {
		if v, ok := o.Metrics[k]; ok && v < 1 {
			t.Errorf("%s=%v below position 1", k, v)
		}
	}
}

// ctrImpactInvariants: figs 14/16 compare CTR distributions (rates in
// [0,1]) between organic and fraud-influenced auctions.
func ctrImpactInvariants(t *testing.T, o *Output) {
	inUnit(t, o, "median_organic", "median_influenced",
		"nearzero_organic", "nearzero_influenced")
	nonNeg(t, o, "influenced_over_organic_median")
}

// cpcImpactInvariants: figs 15/17 compare CPC distributions (prices,
// non-negative) between organic and fraud-influenced auctions.
func cpcImpactInvariants(t *testing.T, o *Output) {
	nonNeg(t, o, "median_organic", "median_influenced", "influenced_over_organic_median",
		"nearzero_organic", "nearzero_influenced")
}

// helpers — each tolerates an absent metric (some are conditional on
// non-degenerate data) but rejects a present one out of range.

func unitInterval(t *testing.T, k string, v float64) {
	t.Helper()
	if v < -1e-9 || v > 1+1e-9 {
		t.Errorf("%s=%v outside [0,1]", k, v)
	}
}

func indicator(t *testing.T, k string, v float64) {
	t.Helper()
	if v != 0 && v != 1 {
		t.Errorf("%s=%v not a 0/1 indicator", k, v)
	}
}

func inUnit(t *testing.T, o *Output, names ...string) {
	t.Helper()
	for _, k := range names {
		if v, ok := o.Metrics[k]; ok {
			unitInterval(t, k, v)
		}
	}
}

func nonNeg(t *testing.T, o *Output, names ...string) {
	t.Helper()
	for _, k := range names {
		if v, ok := o.Metrics[k]; ok && v < 0 {
			t.Errorf("%s=%v negative", k, v)
		}
	}
}

func prefixed(t *testing.T, o *Output, prefix string, check func(k string, v float64)) {
	t.Helper()
	keys := make([]string, 0, len(o.Metrics))
	for k := range o.Metrics {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		check(k, o.Metrics[k])
	}
}

// TestGoldenOutputCompanionInvariants runs every experiment and applies
// its invariant entry, plus generic checks: the invariant table covers
// the whole registry, outputs are non-empty, and every metric is finite.
func TestGoldenOutputCompanionInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness is slow")
	}
	for _, e := range All() {
		if _, ok := metricInvariants[e.ID]; !ok {
			t.Errorf("experiment %s registered without a companion invariant entry", e.ID)
		}
	}
	for id := range metricInvariants {
		if _, ok := Get(id); !ok {
			t.Errorf("invariant entry %s has no registered experiment", id)
		}
	}
	env := testEnv(t)
	for _, e := range All() {
		e := e
		inv, ok := metricInvariants[e.ID]
		if !ok {
			continue
		}
		t.Run(e.ID, func(t *testing.T) {
			o := e.Run(env)
			if len(o.Lines) == 0 && len(o.Metrics) == 0 {
				t.Fatal("empty output")
			}
			for k, v := range o.Metrics {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Errorf("metric %s is %v", k, v)
				}
			}
			inv(t, o)
		})
	}
}

// TestGoldenSubsetBatteryDisjoint is the §3.3 conservation law backing
// every subset-based golden: within each window's battery, fraud-side
// and non-fraud-side subsets draw from disjoint account populations,
// and no subset contains a duplicate account.
func TestGoldenSubsetBatteryDisjoint(t *testing.T) {
	if testing.Short() {
		t.Skip("needs env")
	}
	env := testEnv(t)
	for _, b := range env.Battery {
		fraudIDs := map[int64]bool{}
		nonfraudIDs := map[int64]bool{}
		for _, entry := range b.AllSubsets() {
			seen := map[int64]bool{}
			for _, id := range entry.Sub.IDs {
				n := int64(id)
				if seen[n] {
					t.Errorf("window %s subset %q contains account %d twice",
						b.Window.Name, entry.Sub.Name, n)
				}
				seen[n] = true
				if entry.Fraud {
					fraudIDs[n] = true
				} else {
					nonfraudIDs[n] = true
				}
			}
		}
		for id := range fraudIDs {
			if nonfraudIDs[id] {
				t.Errorf("window %s: account %d appears on both fraud and non-fraud sides",
					b.Window.Name, id)
			}
		}
	}
}
