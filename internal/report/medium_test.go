package report

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/sim"
)

// TestMediumDump runs the medium-scale simulation over the full horizon
// and writes every experiment's output to /tmp/medium_report.txt. Guarded
// by an env var: this is a calibration tool, not a CI test.
func TestMediumDump(t *testing.T) {
	if os.Getenv("MEDIUM_DUMP") == "" {
		t.Skip("set MEDIUM_DUMP=1 to run")
	}
	cfg := sim.MediumConfig()
	cfg.Progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
	res := sim.New(cfg).Run()
	f, err := os.Create("/tmp/medium_report.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fmt.Fprintf(f, "regs=%d fraudRegs=%d auctions=%d impr=%d clicks=%d fraudClicks=%d spend=%.0f fraudSpend=%.0f lost=%.0f elapsed=%s\nstages=%v\n\n",
		res.Registrations, res.FraudRegistrations, res.Auctions, res.Impressions, res.Clicks, res.FraudClicks,
		res.Spend, res.FraudSpend, res.RevenueLost, res.Elapsed, res.ShutdownsByStage)
	env := NewEnv(res, 3000, 99)
	for _, e := range All() {
		fmt.Fprintln(f, e.Run(env).String())
	}
}
