package report

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/stats"
)

// PlotCDFs renders a family of named ECDFs as an ASCII plot — y is
// cumulative probability 0..1, x spans the pooled value range, log-scaled
// when logX is set (the paper's CDF figures are almost all log-x). Each
// series draws with its own glyph; the legend maps glyphs to names.
func PlotCDFs(names []string, ecdfs []*stats.ECDF, logX bool, width, height int) []string {
	if width < 20 {
		width = 60
	}
	if height < 5 {
		height = 12
	}
	glyphs := []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

	// Pooled x-range over non-empty series.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, e := range ecdfs {
		if e.N() == 0 {
			continue
		}
		mn, mx := e.Min(), e.Max()
		if logX {
			if mn <= 0 {
				mn = smallestPositive(e)
			}
			if mn <= 0 {
				continue
			}
		}
		if mn < lo {
			lo = mn
		}
		if mx > hi {
			hi = mx
		}
	}
	if !(hi > lo) {
		return []string{"(not enough data to plot)"}
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, e := range ecdfs {
		if e.N() == 0 {
			continue
		}
		g := glyphs[si%len(glyphs)]
		// Sample the curve densely along x and place one glyph per column.
		for col := 0; col < width; col++ {
			// Invert: find the value at this column, then its CDF.
			var v float64
			f := float64(col) / float64(width-1)
			if logX {
				v = math.Exp(math.Log(lo) + f*(math.Log(hi)-math.Log(lo)))
			} else {
				v = lo + f*(hi-lo)
			}
			p := e.At(v)
			row := height - 1 - int(p*float64(height-1))
			if row >= 0 && row < height && grid[row][col] == ' ' {
				grid[row][col] = g
			}
		}
	}

	out := make([]string, 0, height+3)
	for r, rowBytes := range grid {
		y := 1 - float64(r)/float64(height-1)
		out = append(out, fmt.Sprintf("%4.2f |%s", y, string(rowBytes)))
	}
	scale := "linear"
	if logX {
		scale = "log"
	}
	out = append(out, fmt.Sprintf("      %s", strings.Repeat("-", width)))
	out = append(out, fmt.Sprintf("      x: %.3g .. %.3g (%s)", lo, hi, scale))
	var legend strings.Builder
	legend.WriteString("      ")
	for si, n := range names {
		if si > 0 {
			legend.WriteString("  ")
		}
		fmt.Fprintf(&legend, "%c=%s", glyphs[si%len(glyphs)], n)
	}
	out = append(out, legend.String())
	return out
}

// smallestPositive returns the series' smallest positive sample, or 0.
func smallestPositive(e *stats.ECDF) float64 {
	for _, v := range e.Values() {
		if v > 0 {
			return v
		}
	}
	return 0
}
