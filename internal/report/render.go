package report

import (
	"fmt"
	"strings"

	"repro/internal/stats"
)

// cdfQuantiles are the standard quantiles rendered for CDF figures.
var cdfQuantiles = []float64{0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99}

// CDFRows renders a family of named ECDFs as aligned quantile rows, one
// column per series — the textual equivalent of the paper's CDF plots.
func CDFRows(names []string, ecdfs []*stats.ECDF) []string {
	var out []string
	h := fmt.Sprintf("%8s", "q")
	for _, n := range names {
		if len(n) > 13 {
			n = n[:13]
		}
		h += fmt.Sprintf(" %13s", n)
	}
	out = append(out, h)
	for _, q := range cdfQuantiles {
		row := fmt.Sprintf("%7.0f%%", q*100)
		for _, e := range ecdfs {
			row += fmt.Sprintf(" %13.5g", e.Quantile(q))
		}
		out = append(out, row)
	}
	n := fmt.Sprintf("%8s", "n")
	for _, e := range ecdfs {
		n += fmt.Sprintf(" %13d", e.N())
	}
	out = append(out, n)
	return out
}

// SparkSeries renders a numeric series as a compact unicode sparkline
// with its range, for the time-series figures.
func SparkSeries(label string, values []float64) string {
	if len(values) == 0 {
		return label + ": (empty)"
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(blocks)-1))
		}
		b.WriteRune(blocks[idx])
	}
	return fmt.Sprintf("%-24s [%.4g .. %.4g] %s", label, lo, hi, b.String())
}

// PointRows renders (x, y) series rows.
func PointRows(label string, pts []stats.Point) []string {
	out := []string{label}
	for _, p := range pts {
		out = append(out, fmt.Sprintf("    x=%-12.5g y=%.5g", p.X, p.Y))
	}
	return out
}

// Pct formats a fraction as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
