package report

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
)

// sharedEnv memoizes one small simulation for every test in this package.
var (
	envOnce sync.Once
	envVal  *Env
)

func testEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() {
		cfg := sim.SmallConfig()
		cfg.Seed = 7
		res := sim.New(cfg).Run()
		envVal = NewEnv(res, 1500, 11)
	})
	return envVal
}

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of the paper's evaluation must be registered.
	want := []string{
		"fig1", "table1", "fig2", "fig3", "fig4",
		"fig5", "fig6", "fig7", "fig8", "table2", "table3", "table4", "fig9",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
		"ext1", "ext2",
	}
	if len(All()) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(All()), len(want))
	}
	for _, id := range want {
		if _, ok := Get(id); !ok {
			t.Fatalf("experiment %s not registered", id)
		}
	}
	if _, ok := Get("nope"); ok {
		t.Fatal("phantom experiment")
	}
}

func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness is slow")
	}
	env := testEnv(t)
	for _, e := range All() {
		out := e.Run(env)
		if out == nil {
			t.Fatalf("%s returned nil", e.ID)
		}
		if out.ID != e.ID {
			t.Fatalf("%s output carries ID %s", e.ID, out.ID)
		}
		if len(out.Lines) == 0 && len(out.Metrics) == 0 {
			t.Fatalf("%s produced no output", e.ID)
		}
		s := out.String()
		if !strings.Contains(s, e.ID) {
			t.Fatalf("%s render missing ID header", e.ID)
		}
	}
}

func TestHeadlineShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness is slow")
	}
	env := testEnv(t)
	metric := func(id, name string) float64 {
		t.Helper()
		e, ok := Get(id)
		if !ok {
			t.Fatalf("no experiment %s", id)
		}
		out := e.Run(env)
		v, ok := out.Metrics[name]
		if !ok {
			t.Fatalf("%s has no metric %s (have %v)", id, name, out.Metrics)
		}
		return v
	}

	// Figure 1: fraud share of registrations starts above 1/4 and stays
	// below 3/4 (paper: above 1/3 rising past 1/2 over two years; the
	// small run covers only the ramp's start).
	if v := metric("fig1", "share_first_month"); v < 0.25 || v > 0.55 {
		t.Errorf("fig1 first-month share %v", v)
	}

	// Table 1: US tops every fraud subset.
	out, _ := Get("table1")
	t1 := out.Run(env)
	for k, v := range t1.Metrics {
		if strings.HasPrefix(k, "top_is_US") && v != 1 {
			t.Errorf("table1 %s = %v", k, v)
		}
	}

	// Figure 2: median fraud lifetime under ~2 days even at small scale.
	if v := metric("fig2", "median_account_lifetime_y1_days"); v <= 0 || v > 3 {
		t.Errorf("fig2 median lifetime %v", v)
	}

	// Figure 4: success concentrated in the top decile.
	if v := metric("fig4", "top10pct_click_share"); v < 0.6 {
		t.Errorf("fig4 top-10%% click share %v", v)
	}

	// Figure 7: fraud manages far fewer ads/keywords than non-fraud.
	f := metric("fig7", "median_ads_created_fraud")
	nf := metric("fig7", "median_ads_created_nonfraud")
	if f >= nf {
		t.Errorf("fig7 ads medians fraud=%v nonfraud=%v", f, nf)
	}

	// Figure 9: the fraud population is broad/phrase-skewed.
	fb := metric("fig9", "median_broad_share_fraud")
	nb := metric("fig9", "median_broad_share_nonfraud")
	if fb <= nb {
		t.Errorf("fig9 broad share fraud=%v nonfraud=%v", fb, nb)
	}

	// Figure 17: fraud CPC rises under fraud competition.
	if v := metric("fig17", "influenced_over_organic_median"); v < 1 {
		t.Errorf("fig17 CPC ratio %v", v)
	}
}

func TestOutputHelpers(t *testing.T) {
	o := &Output{ID: "x", Title: "t", Paper: "p"}
	o.Add("row %d", 1)
	o.Metric("m", 2.5)
	s := o.String()
	for _, want := range []string{"== x: t ==", "paper: p", "row 1", "m", "2.5"} {
		if !strings.Contains(s, want) {
			t.Fatalf("render missing %q:\n%s", want, s)
		}
	}
}

func TestCDFRows(t *testing.T) {
	e1 := stats.NewECDF([]float64{1, 2, 3})
	e2 := stats.NewECDF([]float64{10, 20, 30})
	rows := CDFRows([]string{"a", "b"}, []*stats.ECDF{e1, e2})
	if len(rows) != len(cdfQuantiles)+2 {
		t.Fatalf("rows %d", len(rows))
	}
	if !strings.Contains(rows[0], "a") || !strings.Contains(rows[0], "b") {
		t.Fatal("header missing names")
	}
	last := rows[len(rows)-1]
	if !strings.Contains(last, "3") {
		t.Fatalf("n row wrong: %q", last)
	}
}

func TestSparkSeries(t *testing.T) {
	s := SparkSeries("x", []float64{0, 1, 2, 3})
	if !strings.Contains(s, "x") || !strings.Contains(s, "█") {
		t.Fatalf("spark: %q", s)
	}
	if got := SparkSeries("e", nil); !strings.Contains(got, "empty") {
		t.Fatal("empty series")
	}
	flat := SparkSeries("f", []float64{5, 5})
	if !strings.Contains(flat, "▁▁") {
		t.Fatalf("flat series: %q", flat)
	}
}

func TestLogBucket(t *testing.T) {
	cases := map[float64]int{0.5: -1, 1: 0, 5: 0, 10: 1, 99: 1, 100: 2, 0.01: -2}
	for v, want := range cases {
		if got := logBucket(v); got != want {
			t.Fatalf("logBucket(%v) = %d, want %d", v, got, want)
		}
	}
}

func TestPct(t *testing.T) {
	if Pct(0.123) != "12.3%" {
		t.Fatalf("Pct: %q", Pct(0.123))
	}
}

func TestEnvBatteryPerWindow(t *testing.T) {
	if testing.Short() {
		t.Skip("needs env")
	}
	env := testEnv(t)
	if len(env.Battery) != len(env.Res.Collector.Windows()) {
		t.Fatal("battery/window count mismatch")
	}
	if env.Primary() != env.Battery[0] {
		t.Fatal("primary battery mismatch")
	}
}

func TestPlotCDFs(t *testing.T) {
	a := stats.NewECDF([]float64{1, 2, 3, 4, 5})
	b := stats.NewECDF([]float64{10, 20, 30})
	rows := PlotCDFs([]string{"alpha", "beta"}, []*stats.ECDF{a, b}, true, 40, 8)
	if len(rows) != 8+3 {
		t.Fatalf("rows %d", len(rows))
	}
	joined := strings.Join(rows, "\n")
	if !strings.Contains(joined, "*=alpha") || !strings.Contains(joined, "+=beta") {
		t.Fatalf("legend missing:\n%s", joined)
	}
	if !strings.Contains(joined, "log") {
		t.Fatal("scale label missing")
	}
	// Alpha's glyph must appear left of beta's overall (smaller values).
	var alphaFirst, betaFirst int = -1, -1
	for col := 0; col < 40; col++ {
		for _, r := range rows[:8] {
			line := r[6:]
			if col < len(line) {
				if line[col] == '*' && alphaFirst < 0 {
					alphaFirst = col
				}
				if line[col] == '+' && betaFirst < 0 {
					betaFirst = col
				}
			}
		}
	}
	if alphaFirst < 0 || betaFirst < 0 || alphaFirst > betaFirst {
		t.Fatalf("glyph placement wrong: alpha@%d beta@%d", alphaFirst, betaFirst)
	}
}

func TestPlotCDFsDegenerate(t *testing.T) {
	rows := PlotCDFs([]string{"x"}, []*stats.ECDF{stats.NewECDF(nil)}, false, 40, 8)
	if len(rows) != 1 || !strings.Contains(rows[0], "not enough") {
		t.Fatalf("degenerate plot: %v", rows)
	}
	same := stats.NewECDF([]float64{5, 5, 5})
	rows = PlotCDFs([]string{"x"}, []*stats.ECDF{same}, false, 40, 8)
	if len(rows) != 1 {
		t.Fatalf("constant series should not plot: %v", rows)
	}
}

func TestExtensionExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("needs env")
	}
	env := testEnv(t)
	ext1, _ := Get("ext1")
	o1 := ext1.Run(env)
	aucAll, ok := o1.Metrics["auc_all_fraud"]
	if !ok {
		t.Fatal("ext1 missing AUC")
	}
	if aucAll < 0.5 {
		t.Errorf("anomaly scorer worse than random on the whole population: %v", aucAll)
	}
	if aucTop, ok := o1.Metrics["auc_successful_fraud"]; ok && aucTop > aucAll+0.05 {
		t.Errorf("§7 claim inverted: scorer separates successful fraud (%v) better than all fraud (%v)",
			aucTop, aucAll)
	}

	ext2, _ := Get("ext2")
	o2 := ext2.Run(env)
	if len(o2.Lines) == 0 {
		t.Fatal("ext2 produced nothing")
	}
	mf := o2.Metrics["median_life_fresh_days"]
	mr := o2.Metrics["median_life_repeat_days"]
	if mr > 0 && mf > 0 && mr > mf*1.5 {
		t.Errorf("repeat actors living much longer than fresh ones: fresh=%v repeat=%v", mf, mr)
	}
}

func TestSVGAttachment(t *testing.T) {
	if testing.Short() {
		t.Skip("needs env")
	}
	env := testEnv(t)
	for _, id := range []string{"fig2", "fig3", "fig5", "fig10"} {
		e, _ := Get(id)
		out := e.Run(env)
		svg, ok := out.SVGs[id+".svg"]
		if !ok {
			t.Errorf("%s did not attach an SVG (have %v)", id, keysOf(out.SVGs))
			continue
		}
		if !strings.Contains(svg, "<svg") || !strings.Contains(svg, "</svg>") {
			t.Errorf("%s SVG malformed", id)
		}
	}
}

func keysOf(m map[string]string) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
