package report

import (
	"repro/internal/figures"
	"repro/internal/stats"
)

// cdfFigureSeries converts an ECDF to a plot series by sampling it at
// evenly spaced cumulative probabilities.
func cdfFigureSeries(name string, e *stats.ECDF, dashed bool) figures.Series {
	s := figures.Series{Name: name, Dashed: dashed}
	for _, p := range e.Points(120) {
		s.X = append(s.X, p.X)
		s.Y = append(s.Y, p.Y)
	}
	return s
}

// attachCDFSVG renders a family of ECDFs as one SVG figure on the output.
// Alternating solid/dashed styling follows the paper's convention of
// dashing the comparison series.
func attachCDFSVG(o *Output, file, title, xLabel string, names []string, es []*stats.ECDF, logX bool) {
	series := make([]figures.Series, 0, len(es))
	for i := range es {
		if es[i].N() == 0 {
			continue
		}
		series = append(series, cdfFigureSeries(names[i], es[i], i%2 == 1))
	}
	if len(series) == 0 {
		return
	}
	o.SVG(file, figures.CDFPlot(title, xLabel, series, logX))
}
