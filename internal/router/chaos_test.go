package router

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// fakeAdserver mimics the adserver surface the router depends on:
// /search answers 200, /readyz and /statz always serve (probe routes
// stay up even while /search faults — exactly how the fault layer is
// mounted in adbench scenarios). The /search handler is wrapped with
// the given middleware when non-nil.
func fakeAdserver(t *testing.T, mw func(http.Handler) http.Handler) *httptest.Server {
	t.Helper()
	search := http.Handler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"ads":[]}`)
	}))
	if mw != nil {
		search = mw(search)
	}
	mux := http.NewServeMux()
	mux.Handle("/search", search)
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusOK) })
	mux.HandleFunc("/statz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"inflight":0,"capacity":64}`)
	})
	s := httptest.NewServer(mux)
	t.Cleanup(s.Close)
	return s
}

// TestChaosRouterMasksBackendOutage is the PR's headline chaos
// property: with a fault profile failing one member's /search for a
// window of requests, every client request still answers 200 (the
// router retries elsewhere), the faulty member is ejected by the
// consecutive-error threshold, and once the outage window passes the
// seeded-backoff health loop re-admits it and it serves again.
func TestChaosRouterMasksBackendOutage(t *testing.T) {
	inj := faultinject.New(99)
	// Member 0 fails its first 12 /search arrivals with 503s.
	mw := inj.Backend("i0", faultinject.BackendFaults{FailFrom: 1, FailUntil: 13})
	bad := fakeAdserver(t, mw)
	good := fakeAdserver(t, nil)

	rt, err := New(Options{
		Seed:          42,
		EjectAfter:    3,
		Retries:       2,
		ProbeInterval: 10 * time.Millisecond,
		BackoffBase:   5 * time.Millisecond,
		BackoffCap:    40 * time.Millisecond,
	}, bad.URL, good.URL)
	if err != nil {
		t.Fatal(err)
	}
	rt.StartHealth()
	defer rt.Close()

	faulty := rt.Backends()[0]

	// Phase 1: drive traffic through the outage. Every request must
	// succeed — single-member 5xx is the router's to absorb.
	for i := 0; i < 30; i++ {
		resp := doGet(t, rt, "/search?q=x")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d leaked status %d through the router", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	if faulty.ejections.Load() == 0 {
		t.Fatal("faulty member was never ejected")
	}

	// Phase 2: keep driving traffic until the member's outage window is
	// fully consumed. Readyz probes always pass, so the first post-eject
	// probe re-admits; a member re-admitted mid-outage errors again and
	// re-ejects — the seeded backoff bounds the flapping, and every
	// client request must still come back 200 throughout. The fault
	// layer's own arrival counter tells us when the window is spent:
	// arrival 13 is the first one past FailUntil, and it succeeds.
	deadline := time.Now().Add(10 * time.Second)
	for inj.BackendStats("i0").Requests < 13 {
		if time.Now().After(deadline) {
			t.Fatalf("outage never drained (arrivals=%d, state=%v, ejections=%d, readmits=%d)",
				inj.BackendStats("i0").Requests, faulty.State(),
				faulty.ejections.Load(), faulty.readmits.Load())
		}
		resp := doGet(t, rt, "/search?q=x")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("mid-recovery request leaked status %d", resp.StatusCode)
		}
		resp.Body.Close()
		time.Sleep(2 * time.Millisecond) // let the health loop re-admit between batches
	}
	if faulty.readmits.Load() == 0 {
		t.Fatal("member recovered without a readmit count")
	}
	if faulty.served.Load() == 0 {
		t.Fatal("recovered member never served past the outage")
	}

	// Phase 3: the member settles active and serves real traffic again.
	for faulty.State() != Active {
		if time.Now().After(deadline) {
			t.Fatalf("member never settled active (state=%v)", faulty.State())
		}
		time.Sleep(5 * time.Millisecond)
	}
	servedBefore := faulty.served.Load()
	for i := 0; i < 20 && faulty.served.Load() == servedBefore; i++ {
		resp := doGet(t, rt, "/search?q=x")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-recovery status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	if faulty.served.Load() == servedBefore {
		t.Fatal("recovered member never served again")
	}

	s := rt.Stats()
	if s.Masked == 0 {
		t.Fatal("no failures were masked — outage never exercised the retry path")
	}
	if s.NoBackend != 0 || s.Sheds != 0 {
		t.Fatalf("client-visible failures: no_backend=%d sheds=%d, want 0/0", s.NoBackend, s.Sheds)
	}
}

// TestChaosRouterMasksConnectionDrops runs the same masking property
// against severed connections (the fault layer panics with
// http.ErrAbortHandler, which the client sees as a transport error)
// instead of clean 503s.
func TestChaosRouterMasksConnectionDrops(t *testing.T) {
	inj := faultinject.New(7)
	mw := inj.Backend("i0", faultinject.BackendFaults{FailFrom: 1, FailUntil: 9, DropOutage: true})
	bad := fakeAdserver(t, mw)
	good := fakeAdserver(t, nil)

	rt, err := New(Options{
		Seed:          43,
		EjectAfter:    2,
		Retries:       2,
		ProbeInterval: 10 * time.Millisecond,
		BackoffBase:   5 * time.Millisecond,
		BackoffCap:    40 * time.Millisecond,
	}, bad.URL, good.URL)
	if err != nil {
		t.Fatal(err)
	}
	rt.StartHealth()
	defer rt.Close()

	for i := 0; i < 20; i++ {
		resp := doGet(t, rt, "/search?q=x")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d leaked status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	faulty := rt.Backends()[0]
	if faulty.ejections.Load() == 0 {
		t.Fatal("dropping member was never ejected")
	}
	if got := inj.BackendStats("i0").DroppedConns; got == 0 {
		t.Fatalf("fault layer recorded no drops (got %d)", got)
	}
}

// TestChaosDrainUnderLoad: draining a member mid-traffic leaks nothing
// to clients and the drained member stops appearing in answers.
func TestChaosDrainUnderLoad(t *testing.T) {
	a := fakeAdserver(t, nil)
	b := fakeAdserver(t, nil)
	rt, err := New(Options{Seed: 5}, a.URL, b.URL)
	if err != nil {
		t.Fatal(err)
	}
	drained := rt.Backends()[0]
	for i := 0; i < 20; i++ {
		if i == 8 {
			if !rt.Drain(drained.Name) {
				t.Fatal("Drain failed")
			}
		}
		resp := doGet(t, rt, "/search?q=x")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d during drain", i, resp.StatusCode)
		}
		if i > 8 && resp.Header.Get("X-Backend") == drained.Name {
			t.Fatalf("request %d routed to draining member", i)
		}
		resp.Body.Close()
	}
}
