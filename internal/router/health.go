package router

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// healthLoop is the router's member-management goroutine: each tick it
// (a) probes ejected members whose seeded backoff has elapsed with a
// /readyz and re-admits on success, and (b) refreshes active members'
// /statz so the least-loaded policy reads the admission gate's real
// in-flight signal rather than guessing from local state.
type healthLoop struct {
	rt     *Router
	cancel context.CancelFunc
	done   chan struct{}
}

// StartHealth launches the member-management loop. Call Close to stop
// it; starting twice is a no-op.
func (rt *Router) StartHealth() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.health != nil {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	h := &healthLoop{rt: rt, cancel: cancel, done: make(chan struct{})}
	rt.health = h
	go h.run(ctx)
}

// Close stops the health loop (if running) and waits for it to exit.
func (rt *Router) Close() {
	rt.mu.Lock()
	h := rt.health
	rt.health = nil
	rt.mu.Unlock()
	if h != nil {
		h.cancel()
		<-h.done
	}
}

func (h *healthLoop) run(ctx context.Context) {
	defer close(h.done)
	t := time.NewTicker(h.rt.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			h.tick(ctx)
		}
	}
}

// tick probes every member that needs attention. Probes run
// concurrently (a wedged backend must not delay the others) but the
// tick waits for them, so at most one probe per member is in flight.
func (h *healthLoop) tick(ctx context.Context) {
	now := time.Now()
	var wg sync.WaitGroup
	for _, b := range h.rt.Backends() {
		b := b
		switch b.State() {
		case Ejected:
			if now.UnixNano() < b.nextProbe.Load() {
				continue
			}
			wg.Add(1)
			go func() { defer wg.Done(); h.probeReady(ctx, b) }()
		case Active:
			wg.Add(1)
			go func() { defer wg.Done(); h.refreshStatz(ctx, b) }()
		}
	}
	wg.Wait()
}

// probeReady asks an ejected member if it is serving again; success
// re-admits it, failure schedules the next probe by the member's seeded
// backoff.
func (h *healthLoop) probeReady(ctx context.Context, b *Backend) {
	if h.get(ctx, b, "/readyz", nil) {
		b.consec.Store(0)
		b.backoff.Reset()
		b.readmits.Add(1)
		b.state.CompareAndSwap(int32(Ejected), int32(Active))
		return
	}
	b.nextProbe.Store(time.Now().Add(b.backoff.Next()).UnixNano())
}

// statzBody mirrors the adserver /statz reply fields the router reads.
type statzBody struct {
	InFlight int64 `json:"inflight"`
	Capacity int64 `json:"capacity"`
}

// refreshStatz pulls an active member's admission gauge. Probe failures
// count toward the member's consecutive-error ejection threshold, so a
// backend that stops answering even its cheap probe route gets ejected
// without waiting for live traffic to notice.
func (h *healthLoop) refreshStatz(ctx context.Context, b *Backend) {
	var body statzBody
	if !h.get(ctx, b, "/statz", &body) {
		b.noteError(h.rt)
		return
	}
	b.reported.Store(body.InFlight)
	b.capacity.Store(body.Capacity)
}

// get issues one probe GET, decoding JSON into out when non-nil.
// Returns true on a 200.
func (h *healthLoop) get(ctx context.Context, b *Backend, path string, out interface{}) bool {
	ctx, cancel := context.WithTimeout(ctx, h.rt.opts.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.URL.String()+path, nil)
	if err != nil {
		return false
	}
	resp, err := h.rt.client.Do(req)
	if err != nil {
		return false
	}
	defer discard(resp)
	if resp.StatusCode != http.StatusOK {
		return false
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return false
		}
	}
	return true
}
