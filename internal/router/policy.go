package router

import (
	"sync/atomic"
)

// Policy picks which eligible backend serves a request. Pick receives
// the request's affinity key and a non-empty candidate slice in member
// order; it must be safe for concurrent use and must return one of the
// candidates (or nil to refuse, which the router treats as no backend).
type Policy interface {
	Name() string
	Pick(key string, cands []*Backend) *Backend
}

// RoundRobin rotates through the candidate set with a shared counter:
// the i-th pick takes cands[i % len]. With a stable member set the
// rotation is exact; under churn the counter keeps cycling over
// whatever is eligible.
type RoundRobin struct {
	n atomic.Uint64
}

// NewRoundRobin returns a round-robin policy starting at the first
// member.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

func (p *RoundRobin) Name() string { return "round_robin" }

func (p *RoundRobin) Pick(_ string, cands []*Backend) *Backend {
	return cands[int((p.n.Add(1)-1)%uint64(len(cands)))]
}

// LeastLoaded picks the candidate with the smallest in-flight load —
// the larger of the router-local gauge and the backend's self-reported
// admission count — breaking ties by member index so the choice is
// deterministic.
type LeastLoaded struct{}

func (LeastLoaded) Name() string { return "least_loaded" }

func (LeastLoaded) Pick(_ string, cands []*Backend) *Backend {
	best := cands[0]
	bestLoad := best.load()
	for _, b := range cands[1:] {
		l := b.load()
		if l < bestLoad || (l == bestLoad && b.idx < best.idx) {
			best, bestLoad = b, l
		}
	}
	return best
}

// Affinity routes by rendezvous (highest-random-weight) hashing of the
// affinity key against member names: a key always lands on the same
// member while that member is eligible, and removing a member remaps
// only that member's keys — the stability that keeps per-instance page
// and response caches hot through churn.
type Affinity struct{}

func (Affinity) Name() string { return "affinity" }

func (Affinity) Pick(key string, cands []*Backend) *Backend {
	best := cands[0]
	bestScore := rendezvous(key, best.Name)
	for _, b := range cands[1:] {
		if s := rendezvous(key, b.Name); s > bestScore || (s == bestScore && b.idx < best.idx) {
			best, bestScore = b, s
		}
	}
	return best
}

// rendezvous scores a (key, member) pair with FNV-1a over both.
func rendezvous(key, member string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	h ^= uint64(0x1f) // separator so ("ab","c") != ("a","bc")
	h *= 1099511628211
	for i := 0; i < len(member); i++ {
		h ^= uint64(member[i])
		h *= 1099511628211
	}
	return h
}

// PolicyByName maps scenario-spec names to policies.
func PolicyByName(name string) (Policy, bool) {
	switch name {
	case "round_robin", "rr", "":
		return NewRoundRobin(), true
	case "least_loaded", "ll":
		return LeastLoaded{}, true
	case "affinity", "aff":
		return Affinity{}, true
	}
	return nil, false
}
