package router

import (
	"fmt"
	"testing"
)

// mkBackends builds a member list without a router (policies only see
// the slice).
func mkBackends(n int) []*Backend {
	out := make([]*Backend, n)
	for i := range out {
		out[i] = &Backend{Name: fmt.Sprintf("b%d:80", i), idx: i}
	}
	return out
}

// TestRoundRobinRotationPin pins the exact rotation: with a stable
// member set the i-th pick is cands[i % n], starting at the first
// member.
func TestRoundRobinRotationPin(t *testing.T) {
	p := NewRoundRobin()
	cands := mkBackends(3)
	want := []int{0, 1, 2, 0, 1, 2, 0}
	for i, w := range want {
		if got := p.Pick("k", cands); got != cands[w] {
			t.Fatalf("pick %d: got %s, want %s", i, got.Name, cands[w].Name)
		}
	}
	// A shrunken candidate set keeps cycling without panic.
	for i := 0; i < 4; i++ {
		if got := p.Pick("k", cands[:2]); got != cands[0] && got != cands[1] {
			t.Fatalf("pick over shrunk set returned ineligible %s", got.Name)
		}
	}
}

// TestLeastLoadedTieBreak pins determinism: equal load always picks
// the lowest member index, and the load signal is the max of the local
// gauge and the backend's self-report.
func TestLeastLoadedTieBreak(t *testing.T) {
	p := LeastLoaded{}
	cands := mkBackends(3)
	for i := 0; i < 5; i++ {
		if got := p.Pick("k", cands); got != cands[0] {
			t.Fatalf("all-zero load must pick index 0, got %s", got.Name)
		}
	}
	cands[0].inflight.Store(2)
	cands[1].inflight.Store(1)
	cands[2].inflight.Store(1)
	if got := p.Pick("k", cands); got != cands[1] {
		t.Fatalf("tie at load 1 must pick lower index, got %s", got.Name)
	}
	// Self-reported load counts even when the local gauge is idle: the
	// backend may be serving traffic from elsewhere.
	cands[1].reported.Store(5)
	if got := p.Pick("k", cands); got != cands[2] {
		t.Fatalf("reported load must steer away, got %s", got.Name)
	}
	if cands[1].load() != 5 {
		t.Fatalf("load() must take max(local, reported), got %d", cands[1].load())
	}
}

// TestAffinityStableUnderChurn pins the rendezvous property: a key maps
// to the same member across calls, and removing one member remaps only
// the keys that lived there — every other key keeps its home.
func TestAffinityStableUnderChurn(t *testing.T) {
	p := Affinity{}
	cands := mkBackends(5)
	keys := make([]string, 200)
	for i := range keys {
		keys[i] = fmt.Sprintf("query phrase %d", i)
	}

	home := make(map[string]*Backend, len(keys))
	for _, k := range keys {
		home[k] = p.Pick(k, cands)
		if p.Pick(k, cands) != home[k] {
			t.Fatalf("key %q not stable across calls", k)
		}
	}
	// Keys spread over more than one member (sanity that hashing works).
	seen := map[*Backend]bool{}
	for _, b := range home {
		seen[b] = true
	}
	if len(seen) < 2 {
		t.Fatalf("all %d keys landed on one member", len(keys))
	}

	// Remove member 2: only its keys may move, and they must land on a
	// surviving member.
	removed := cands[2]
	survivors := append(append([]*Backend{}, cands[:2]...), cands[3:]...)
	for _, k := range keys {
		got := p.Pick(k, survivors)
		if home[k] != removed {
			if got != home[k] {
				t.Fatalf("key %q moved from %s to %s though its home survived", k, home[k].Name, got.Name)
			}
		} else if got == removed {
			t.Fatalf("key %q still routed to removed member", k)
		}
	}
}

func TestPolicyByName(t *testing.T) {
	for name, want := range map[string]string{
		"round_robin": "round_robin", "rr": "round_robin", "": "round_robin",
		"least_loaded": "least_loaded", "ll": "least_loaded",
		"affinity": "affinity", "aff": "affinity",
	} {
		p, ok := PolicyByName(name)
		if !ok || p.Name() != want {
			t.Fatalf("PolicyByName(%q) = %v, %v", name, p, ok)
		}
	}
	if _, ok := PolicyByName("bogus"); ok {
		t.Fatal("bogus policy resolved")
	}
}
