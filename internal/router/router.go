// Package router fronts N adserver instances with a policy-driven HTTP
// reverse proxy: pluggable balancing (round-robin, least-loaded on the
// admission gate's in-flight gauge, keyword-affinity via rendezvous
// hashing so a query's cache locality survives member churn),
// health-aware member management (eject on consecutive proxy errors or
// failed /readyz probes, seeded-backoff re-admission reusing the
// cluster Backoff), bounded retry of connection errors and 5xx to a
// different backend, and per-backend admission awareness (a 429's
// Retry-After cools that backend instead of hammering it).
//
// The router's client-visible failure surface is exactly its shed
// accounting: forwarded 429s (the cluster was at admission capacity)
// and router-generated 503s (no eligible backend). Single-backend
// latency/error/crash injection is masked by retrying elsewhere — the
// property the chaos suite pins.
package router

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
)

// State is a backend's membership state.
type State int32

const (
	// Active backends receive traffic.
	Active State = iota
	// Ejected backends are out of rotation until a readyz probe passes.
	Ejected
	// Draining backends finish in-flight work but receive nothing new.
	Draining
)

func (s State) String() string {
	switch s {
	case Active:
		return "active"
	case Ejected:
		return "ejected"
	case Draining:
		return "draining"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// Backend is one adserver instance behind the router.
type Backend struct {
	Name string
	URL  *url.URL
	idx  int

	inflight  atomic.Int64  // requests this router currently has open to it
	reported  atomic.Int64  // in-flight count the backend last reported (statz/header)
	capacity  atomic.Int64  // admission capacity the backend last reported
	served    atomic.Uint64 // successful proxied responses
	errors    atomic.Uint64 // transport errors + 5xx from this backend
	consec    atomic.Int64  // consecutive errors; reset on any success
	state     atomic.Int32
	coolUntil atomic.Int64 // unix nanos; > now means a 429 told us to back off
	ejections atomic.Uint64
	readmits  atomic.Uint64

	backoff   *cluster.Backoff
	nextProbe atomic.Int64 // unix nanos of the next re-admission probe
}

// State returns the backend's membership state.
func (b *Backend) State() State { return State(b.state.Load()) }

// InFlight returns the router-local open-request gauge.
func (b *Backend) InFlight() int64 { return b.inflight.Load() }

// Reported returns the in-flight count the backend last self-reported.
func (b *Backend) Reported() int64 { return b.reported.Load() }

// load is the least-loaded signal: the larger of the router-local gauge
// and the backend's self-reported in-flight count (the local gauge
// misses traffic from other routers; the report lags ours).
func (b *Backend) load() int64 {
	l, r := b.inflight.Load(), b.reported.Load()
	if r > l {
		return r
	}
	return l
}

// cooling reports whether a Retry-After hint still blocks new sends.
func (b *Backend) cooling(now time.Time) bool {
	return b.coolUntil.Load() > now.UnixNano()
}

// Options configures a Router.
type Options struct {
	// Policy picks a backend per request. Defaults to RoundRobin.
	Policy Policy
	// Retries bounds additional attempts on a different backend after a
	// connection error or 5xx. Defaults to 2; negative disables.
	Retries int
	// EjectAfter is the consecutive-error threshold that ejects a
	// backend. Defaults to 3; <= 0 disables ejection.
	EjectAfter int
	// Seed drives every re-admission backoff schedule; same seed, same
	// recovery timing.
	Seed uint64
	// BackoffBase/BackoffCap bound the seeded re-admission backoff.
	// Default 50ms / 2s.
	BackoffBase, BackoffCap time.Duration
	// ProbeInterval is the health-loop tick: ejected members due for a
	// probe get one readyz each tick, and active members get a statz
	// refresh so least-loaded reads real signal. Default 250ms.
	ProbeInterval time.Duration
	// ProbeTimeout bounds each probe request. Default 1s.
	ProbeTimeout time.Duration
	// Transport overrides the proxy transport (tests inject
	// failure-returning transports). Defaults to http.DefaultTransport.
	Transport http.RoundTripper
}

func (o Options) withDefaults() Options {
	if o.Policy == nil {
		o.Policy = NewRoundRobin()
	}
	if o.Retries == 0 {
		o.Retries = 2
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	if o.EjectAfter == 0 {
		o.EjectAfter = 3
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 50 * time.Millisecond
	}
	if o.BackoffCap <= 0 {
		o.BackoffCap = 2 * time.Second
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 250 * time.Millisecond
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = time.Second
	}
	if o.Transport == nil {
		o.Transport = http.DefaultTransport
	}
	return o
}

// Router is the policy-driven front door. Safe for concurrent use.
type Router struct {
	opts   Options
	client *http.Client

	mu       sync.RWMutex
	backends []*Backend

	received  atomic.Uint64 // requests accepted from clients
	retried   atomic.Uint64 // extra proxy attempts beyond the first
	masked    atomic.Uint64 // failures hidden from the client by a retry
	noBackend atomic.Uint64 // router-generated 503s (no eligible member)
	sheds     atomic.Uint64 // backend 429s forwarded to the client

	health *healthLoop
}

// New builds a router over the given backend base URLs (name -> URL).
// Backends are indexed in the order given; policies use the index for
// deterministic tie-breaks.
func New(opts Options, backends ...string) (*Router, error) {
	opts = opts.withDefaults()
	rt := &Router{
		opts:   opts,
		client: &http.Client{Transport: opts.Transport},
	}
	for _, raw := range backends {
		if _, err := rt.AddBackend(raw); err != nil {
			return nil, err
		}
	}
	return rt, nil
}

// AddBackend registers a new member (active immediately), named by the
// URL's host.
func (rt *Router) AddBackend(raw string) (*Backend, error) {
	return rt.AddNamedBackend("", raw)
}

// AddNamedBackend registers a member under a stable name of the
// caller's choosing (empty falls back to the URL host). The name is the
// member's routing identity: the affinity policy hashes it, so giving
// instances stable names keeps the keyspace mapping reproducible across
// runs even when listeners land on ephemeral ports.
func (rt *Router) AddNamedBackend(name, raw string) (*Backend, error) {
	u, err := url.Parse(raw)
	if err != nil {
		return nil, fmt.Errorf("router: backend url %q: %w", raw, err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("router: backend url %q: need scheme and host", raw)
	}
	if name == "" {
		name = u.Host
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	b := &Backend{Name: name, URL: u, idx: len(rt.backends)}
	b.backoff = cluster.NewBackoff(rt.opts.Seed, b.idx, rt.opts.BackoffBase, rt.opts.BackoffCap)
	rt.backends = append(rt.backends, b)
	return b, nil
}

// RemoveBackend takes a member out of the set entirely. Returns false
// for unknown names.
func (rt *Router) RemoveBackend(name string) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for i, b := range rt.backends {
		if b.Name == name {
			rt.backends = append(rt.backends[:i], rt.backends[i+1:]...)
			return true
		}
	}
	return false
}

// Backends snapshots the current member list.
func (rt *Router) Backends() []*Backend {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	out := make([]*Backend, len(rt.backends))
	copy(out, rt.backends)
	return out
}

// Drain flips a member to draining: in-flight requests finish, nothing
// new is routed to it. Returns false for unknown names.
func (rt *Router) Drain(name string) bool { return rt.setState(name, Draining) }

// Resume returns a draining member to active rotation.
func (rt *Router) Resume(name string) bool { return rt.setState(name, Active) }

func (rt *Router) setState(name string, s State) bool {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	for _, b := range rt.backends {
		if b.Name == name {
			b.state.Store(int32(s))
			if s == Active {
				b.consec.Store(0)
			}
			return true
		}
	}
	return false
}

// eligible returns the backends a new request may be sent to, excluding
// the already-tried set.
func (rt *Router) eligible(now time.Time, tried map[*Backend]bool) []*Backend {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	out := make([]*Backend, 0, len(rt.backends))
	for _, b := range rt.backends {
		if tried[b] || b.State() != Active || b.cooling(now) {
			continue
		}
		out = append(out, b)
	}
	return out
}

// ServeHTTP proxies the request to a policy-picked backend, retrying
// connection errors and 5xx on a different member within the retry
// budget. 429s cool the backend and move on; when every member is
// tried, cooling, or out, the client sees the terminal status (or a
// router 503 when nothing was reachable at all).
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt.received.Add(1)
	key := affinityKey(r)
	attempts := rt.opts.Retries + 1
	tried := make(map[*Backend]bool, attempts)

	var lastResp *http.Response
	var lastBackend *Backend
	for attempt := 0; attempt < attempts; attempt++ {
		cands := rt.eligible(time.Now(), tried)
		if len(cands) == 0 {
			break
		}
		b := rt.opts.Policy.Pick(key, cands)
		if b == nil {
			break
		}
		tried[b] = true
		if attempt > 0 {
			rt.retried.Add(1)
		}

		resp, err := rt.forward(b, r)
		if err != nil {
			b.noteError(rt)
			continue // connection error: try elsewhere
		}
		rt.noteReport(b, resp)
		switch {
		case resp.StatusCode == http.StatusTooManyRequests:
			// Admission shed: honor Retry-After for this backend only.
			b.cool(retryAfter(resp))
			rt.dropOrKeep(&lastResp, resp)
			lastBackend = b
			continue
		case resp.StatusCode >= 500:
			b.noteError(rt)
			rt.dropOrKeep(&lastResp, resp)
			lastBackend = b
			continue
		}
		// Success: anything below 500 that isn't a shed is the backend's
		// real answer (including 4xx like missing_query).
		b.consec.Store(0)
		b.served.Add(1)
		if len(tried) > 1 {
			rt.masked.Add(1)
		}
		if lastResp != nil {
			discard(lastResp)
		}
		rt.writeResponse(w, resp, b)
		return
	}

	if lastResp != nil {
		// Out of options: surface the last backend answer (a 429 is shed
		// accounting; a 5xx means every member failed).
		if lastResp.StatusCode == http.StatusTooManyRequests {
			rt.sheds.Add(1)
		}
		rt.writeResponse(w, lastResp, lastBackend)
		return
	}
	rt.noBackend.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Retry-After", "1")
	w.WriteHeader(http.StatusServiceUnavailable)
	fmt.Fprintf(w, `{"error":"no eligible backend","code":"router_no_backend"}`+"\n")
}

// forward issues one proxy attempt, holding the backend's in-flight
// gauge for its duration.
func (rt *Router) forward(b *Backend, r *http.Request) (*http.Response, error) {
	u := *b.URL
	u.Path = r.URL.Path
	u.RawQuery = r.URL.RawQuery
	out, err := http.NewRequestWithContext(r.Context(), r.Method, u.String(), nil)
	if err != nil {
		return nil, err
	}
	for k, vs := range r.Header {
		out.Header[k] = vs
	}
	b.inflight.Add(1)
	resp, err := rt.client.Do(out)
	b.inflight.Add(-1)
	return resp, err
}

// writeResponse relays a backend response, stamping which member
// answered.
func (rt *Router) writeResponse(w http.ResponseWriter, resp *http.Response, b *Backend) {
	defer resp.Body.Close()
	h := w.Header()
	for k, vs := range resp.Header {
		h[k] = vs
	}
	if b != nil {
		h.Set("X-Backend", b.Name)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// dropOrKeep retains resp as the newest terminal candidate, discarding
// the previous one.
func (rt *Router) dropOrKeep(last **http.Response, resp *http.Response) {
	if *last != nil {
		discard(*last)
	}
	*last = resp
}

func discard(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// noteReport refreshes the backend's self-reported admission signal
// from response headers (the adserver stamps X-Inflight/X-Capacity on
// served responses).
func (rt *Router) noteReport(b *Backend, resp *http.Response) {
	if v := resp.Header.Get("X-Inflight"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			b.reported.Store(n)
		}
	}
	if v := resp.Header.Get("X-Capacity"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			b.capacity.Store(n)
		}
	}
}

// noteError bumps the backend's error counters and ejects it once the
// consecutive-error threshold trips.
func (b *Backend) noteError(rt *Router) {
	b.errors.Add(1)
	c := b.consec.Add(1)
	if rt.opts.EjectAfter > 0 && c >= int64(rt.opts.EjectAfter) &&
		b.state.CompareAndSwap(int32(Active), int32(Ejected)) {
		b.ejections.Add(1)
		b.nextProbe.Store(time.Now().Add(b.backoff.Next()).UnixNano())
	}
}

// cool blocks new sends to the backend for d (from a 429 Retry-After).
func (b *Backend) cool(d time.Duration) {
	if d <= 0 {
		d = time.Second
	}
	b.coolUntil.Store(time.Now().Add(d).UnixNano())
}

// retryAfter parses a whole-seconds Retry-After header.
func retryAfter(resp *http.Response) time.Duration {
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		return time.Duration(secs) * time.Second
	}
	return 0
}

// affinityKey is the routing key: the search phrase when present (so
// identical queries pin to the same member's caches), else the path.
func affinityKey(r *http.Request) string {
	if q := r.URL.Query().Get("q"); q != "" {
		return q
	}
	return r.URL.Path
}

// Stats is a point-in-time snapshot of router and member counters.
type Stats struct {
	Policy    string         `json:"policy"`
	Received  uint64         `json:"received"`
	Retried   uint64         `json:"retried"`
	Masked    uint64         `json:"masked"`
	NoBackend uint64         `json:"no_backend"`
	Sheds     uint64         `json:"sheds"`
	Backends  []BackendStats `json:"backends"`
}

// BackendStats is one member's counters.
type BackendStats struct {
	Name      string `json:"name"`
	State     string `json:"state"`
	Served    uint64 `json:"served"`
	Errors    uint64 `json:"errors"`
	Ejections uint64 `json:"ejections"`
	Readmits  uint64 `json:"readmits"`
	InFlight  int64  `json:"inflight"`
	Reported  int64  `json:"reported"`
}

// Stats snapshots the router's counters.
func (rt *Router) Stats() Stats {
	s := Stats{
		Policy:    rt.opts.Policy.Name(),
		Received:  rt.received.Load(),
		Retried:   rt.retried.Load(),
		Masked:    rt.masked.Load(),
		NoBackend: rt.noBackend.Load(),
		Sheds:     rt.sheds.Load(),
	}
	for _, b := range rt.Backends() {
		s.Backends = append(s.Backends, BackendStats{
			Name:      b.Name,
			State:     b.State().String(),
			Served:    b.served.Load(),
			Errors:    b.errors.Load(),
			Ejections: b.ejections.Load(),
			Readmits:  b.readmits.Load(),
			InFlight:  b.inflight.Load(),
			Reported:  b.reported.Load(),
		})
	}
	return s
}
