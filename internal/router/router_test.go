package router

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// okBackend serves 200 with a recognizable body on every route.
func okBackend(t *testing.T, body string) *httptest.Server {
	t.Helper()
	s := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, body)
	}))
	t.Cleanup(s.Close)
	return s
}

// statusBackend always answers the given status.
func statusBackend(t *testing.T, status int, hdr map[string]string) *httptest.Server {
	t.Helper()
	s := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		for k, v := range hdr {
			w.Header().Set(k, v)
		}
		w.WriteHeader(status)
	}))
	t.Cleanup(s.Close)
	return s
}

// deadAddr returns a loopback URL with nothing listening on it.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return "http://" + addr
}

func doGet(t *testing.T, rt *Router, path string) *http.Response {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, req)
	return rec.Result()
}

// TestRetryMasksConnectionError pins the core masking contract: a dead
// member costs a retry, never a client-visible error.
func TestRetryMasksConnectionError(t *testing.T) {
	ok := okBackend(t, "alive")
	rt, err := New(Options{Seed: 1}, deadAddr(t), ok.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp := doGet(t, rt, "/search?q=x")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "alive" {
		t.Fatalf("body = %q", body)
	}
	s := rt.Stats()
	if s.Masked != 1 || s.Retried != 1 {
		t.Fatalf("masked=%d retried=%d, want 1/1", s.Masked, s.Retried)
	}
	if s.Backends[0].Errors != 1 {
		t.Fatalf("dead backend errors = %d, want 1", s.Backends[0].Errors)
	}
}

// TestRetryMasks5xx: a 500-class answer is retried on another member and
// the failing response is discarded.
func TestRetryMasks5xx(t *testing.T) {
	bad := statusBackend(t, http.StatusInternalServerError, nil)
	ok := okBackend(t, "good")
	rt, err := New(Options{Seed: 1}, bad.URL, ok.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp := doGet(t, rt, "/search?q=x")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Backend"); got != rt.Backends()[1].Name {
		t.Fatalf("X-Backend = %q, want healthy member", got)
	}
}

// TestEjectAfterConsecutiveErrors pins the ejection threshold and that
// an ejected member stops receiving traffic.
func TestEjectAfterConsecutiveErrors(t *testing.T) {
	bad := statusBackend(t, http.StatusBadGateway, nil)
	ok := okBackend(t, "good")
	rt, err := New(Options{Seed: 7, EjectAfter: 2}, bad.URL, ok.URL)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if resp := doGet(t, rt, "/search?q=x"); resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
	}
	b := rt.Backends()[0]
	if b.State() != Ejected {
		t.Fatalf("bad backend state = %v, want ejected", b.State())
	}
	if b.ejections.Load() != 1 {
		t.Fatalf("ejections = %d, want 1", b.ejections.Load())
	}
	// Ejected member is out of every candidate set.
	served := b.served.Load()
	for i := 0; i < 3; i++ {
		doGet(t, rt, "/search?q=x")
	}
	if b.served.Load() != served {
		t.Fatal("ejected backend still served traffic")
	}
}

// TestRetryAfterCoolsBackend: a 429 takes the member out of rotation
// for its Retry-After window without counting as an error.
func TestRetryAfterCoolsBackend(t *testing.T) {
	shed := statusBackend(t, http.StatusTooManyRequests, map[string]string{"Retry-After": "1"})
	ok := okBackend(t, "good")
	rt, err := New(Options{Seed: 1}, shed.URL, ok.URL)
	if err != nil {
		t.Fatal(err)
	}
	// Round-robin sends the first request to the shedding member; the
	// retry lands on the healthy one.
	if resp := doGet(t, rt, "/search?q=x"); resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 after cooling retry", resp.StatusCode)
	}
	b := rt.Backends()[0]
	if !b.cooling(time.Now()) {
		t.Fatal("429 did not cool the backend")
	}
	if b.errors.Load() != 0 {
		t.Fatalf("shed counted as error: %d", b.errors.Load())
	}
	// While cooling, the member is ineligible even before being tried.
	if got := rt.eligible(time.Now(), map[*Backend]bool{}); len(got) != 1 || got[0].Name == b.Name {
		t.Fatalf("cooling member still eligible: %v", got)
	}
}

// TestShedForwardedWhenSaturated: when every member sheds, the client
// sees the 429 (shed accounting, not an invented error).
func TestShedForwardedWhenSaturated(t *testing.T) {
	a := statusBackend(t, http.StatusTooManyRequests, map[string]string{"Retry-After": "1"})
	b := statusBackend(t, http.StatusTooManyRequests, map[string]string{"Retry-After": "1"})
	rt, err := New(Options{Seed: 1}, a.URL, b.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp := doGet(t, rt, "/search?q=x")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 forwarded", resp.StatusCode)
	}
	if rt.Stats().Sheds != 1 {
		t.Fatalf("sheds = %d, want 1", rt.Stats().Sheds)
	}
}

// TestDrainStopsNewTraffic: a draining member receives nothing new and
// Resume puts it back.
func TestDrainStopsNewTraffic(t *testing.T) {
	a := okBackend(t, "a")
	b := okBackend(t, "b")
	rt, err := New(Options{Seed: 1}, a.URL, b.URL)
	if err != nil {
		t.Fatal(err)
	}
	drained := rt.Backends()[0]
	if !rt.Drain(drained.Name) {
		t.Fatal("Drain returned false for known member")
	}
	for i := 0; i < 4; i++ {
		resp := doGet(t, rt, "/search?q=x")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d during drain", resp.StatusCode)
		}
		if got := resp.Header.Get("X-Backend"); got == drained.Name {
			t.Fatal("draining member received new traffic")
		}
	}
	if drained.served.Load() != 0 {
		t.Fatal("draining member served")
	}
	if !rt.Resume(drained.Name) {
		t.Fatal("Resume returned false")
	}
	for i := 0; i < 2; i++ {
		doGet(t, rt, "/search?q=x")
	}
	if drained.served.Load() == 0 {
		t.Fatal("resumed member never served again")
	}
}

// TestNoEligibleBackend503: with every member out, the router answers
// its own 503 with a machine-readable code and Retry-After.
func TestNoEligibleBackend503(t *testing.T) {
	a := okBackend(t, "a")
	rt, err := New(Options{Seed: 1}, a.URL)
	if err != nil {
		t.Fatal(err)
	}
	rt.Drain(rt.Backends()[0].Name)
	resp := doGet(t, rt, "/search?q=x")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Fatal("router 503 missing Retry-After")
	}
	body, _ := io.ReadAll(resp.Body)
	if want := "router_no_backend"; !contains(string(body), want) {
		t.Fatalf("body %q missing %q", body, want)
	}
	if rt.Stats().NoBackend != 1 {
		t.Fatalf("no_backend = %d, want 1", rt.Stats().NoBackend)
	}
}

// TestNoteReportReadsAdmissionHeaders: served responses refresh the
// member's self-reported load signal.
func TestNoteReportReadsAdmissionHeaders(t *testing.T) {
	a := statusBackend(t, http.StatusOK, map[string]string{"X-Inflight": "7", "X-Capacity": "64"})
	rt, err := New(Options{Seed: 1}, a.URL)
	if err != nil {
		t.Fatal(err)
	}
	doGet(t, rt, "/search?q=x")
	b := rt.Backends()[0]
	if b.Reported() != 7 || b.capacity.Load() != 64 {
		t.Fatalf("reported=%d capacity=%d, want 7/64", b.Reported(), b.capacity.Load())
	}
}

// TestAddRemoveBackend covers member-list management.
func TestAddRemoveBackend(t *testing.T) {
	a := okBackend(t, "a")
	rt, err := New(Options{Seed: 1}, a.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AddBackend("not a url ::"); err == nil {
		t.Fatal("bad URL accepted")
	}
	if _, err := rt.AddBackend("nohost"); err == nil {
		t.Fatal("schemeless URL accepted")
	}
	b := okBackend(t, "b")
	nb, err := rt.AddBackend(b.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.Backends()) != 2 {
		t.Fatalf("backends = %d, want 2", len(rt.Backends()))
	}
	if !rt.RemoveBackend(nb.Name) {
		t.Fatal("RemoveBackend returned false")
	}
	if rt.RemoveBackend("ghost:1") {
		t.Fatal("removed unknown member")
	}
	if len(rt.Backends()) != 1 {
		t.Fatalf("backends = %d after remove, want 1", len(rt.Backends()))
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
