package sim

// Checkpoint file format. A checkpoint is one CRC-framed gob payload:
//
//	offset 0: magic "FRSNAP" + one format-version byte (currently 2;
//	          version 2 added the detection pipeline's per-account RNG
//	          streams and the mid-day phase cursor, which a version-1
//	          reader would silently misinterpret)
//	then:     uvarint payload length | payload | crc32c(payload) LE
//
// The CRC is computed with the Castagnoli polynomial — the same framing
// discipline as the event log — so a torn or bit-flipped snapshot is
// detected before gob ever sees it. Writes are atomic: the file is
// staged at a temporary name, fsynced, then renamed over the target, so
// a crash during checkpointing leaves the previous checkpoint intact.

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// checkpointMagic identifies a checkpoint file; the trailing byte is the
// format version.
var checkpointMagic = []byte{'F', 'R', 'S', 'N', 'A', 'P', 2}

var checkpointCRC = crc32.MakeTable(crc32.Castagnoli)

// LogPosition records where the event log stood when a checkpoint was
// taken: the index of the segment the resumed run will open next, and the
// number of events written so far (a cheap cross-check for diagnostics).
// Checkpointing forces a segment rotation first, so the snapshot always
// aligns with a segment boundary and resuming never has to re-enter a
// half-written segment (whose intern table could not be reconstructed).
type LogPosition struct {
	NextSegment int
	Events      uint64
}

// Checkpoint pairs a sim snapshot with the event-log position it is
// consistent with.
type Checkpoint struct {
	State *State
	Log   LogPosition
}

// encodeCheckpoint renders a checkpoint as its on-disk frame: magic,
// version, uvarint payload length, gob payload, CRC32C.
func encodeCheckpoint(c *Checkpoint) ([]byte, error) {
	if c == nil || c.State == nil {
		return nil, fmt.Errorf("sim: nil checkpoint")
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(c); err != nil {
		return nil, fmt.Errorf("sim: encode checkpoint: %w", err)
	}
	var buf bytes.Buffer
	buf.Write(checkpointMagic)
	var lenBuf [binary.MaxVarintLen64]byte
	buf.Write(lenBuf[:binary.PutUvarint(lenBuf[:], uint64(payload.Len()))])
	buf.Write(payload.Bytes())
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc32.Checksum(payload.Bytes(), checkpointCRC))
	buf.Write(crcBuf[:])
	return buf.Bytes(), nil
}

// writeFileSync writes data to path (truncating) and fsyncs it, removing
// the file on any failure so a half-written staging file never survives
// its own error path.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(path)
		return err
	}
	return nil
}

// WriteCheckpoint atomically writes a checkpoint file.
func WriteCheckpoint(path string, c *Checkpoint) error {
	frame, err := encodeCheckpoint(c)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := writeFileSync(tmp, frame); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a rename into it survives power loss.
// Errors are ignored on platforms where directories cannot be fsynced.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	d.Sync()
	return d.Close()
}

// ReadCheckpoint reads and validates a checkpoint file: magic, version,
// declared length, and CRC are all checked before gob decoding, and the
// decode itself is guarded so hostile bytes yield an error, never a
// panic.
func ReadCheckpoint(path string) (c *Checkpoint, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeCheckpoint(data)
}

// DecodeCheckpoint validates and decodes checkpoint bytes (the body of
// ReadCheckpoint, split out for fuzzing).
func DecodeCheckpoint(data []byte) (c *Checkpoint, err error) {
	if len(data) < len(checkpointMagic) || !bytes.Equal(data[:len(checkpointMagic)-1], checkpointMagic[:len(checkpointMagic)-1]) {
		return nil, fmt.Errorf("sim: not a checkpoint file")
	}
	if v := data[len(checkpointMagic)-1]; v != checkpointMagic[len(checkpointMagic)-1] {
		return nil, fmt.Errorf("sim: unsupported checkpoint version %d", v)
	}
	rest := data[len(checkpointMagic):]
	n, size := binary.Uvarint(rest)
	if size <= 0 {
		return nil, fmt.Errorf("sim: corrupt checkpoint length")
	}
	rest = rest[size:]
	if n > uint64(len(rest)) {
		return nil, fmt.Errorf("sim: checkpoint truncated: declares %d payload bytes, has %d", n, len(rest))
	}
	payload := rest[:n]
	tail := rest[n:]
	if len(tail) < 4 {
		return nil, fmt.Errorf("sim: checkpoint missing CRC")
	}
	want := binary.LittleEndian.Uint32(tail[:4])
	if got := crc32.Checksum(payload, checkpointCRC); got != want {
		return nil, fmt.Errorf("sim: checkpoint CRC mismatch: %08x != %08x", got, want)
	}
	defer func() {
		if r := recover(); r != nil {
			c, err = nil, fmt.Errorf("sim: checkpoint decode panicked: %v", r)
		}
	}()
	c = &Checkpoint{}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(c); err != nil {
		return nil, fmt.Errorf("sim: decode checkpoint: %w", err)
	}
	if c.State == nil {
		return nil, fmt.Errorf("sim: checkpoint has no state")
	}
	if c.Log.NextSegment < 0 {
		return nil, fmt.Errorf("sim: checkpoint has negative segment index %d", c.Log.NextSegment)
	}
	return c, nil
}

// WriteCheckpointFile snapshots the sim and writes it with the given log
// position in one call.
func (s *Sim) WriteCheckpointFile(path string, pos LogPosition) error {
	return WriteCheckpoint(path, &Checkpoint{State: s.Snapshot(), Log: pos})
}

// CheckpointInfo is what InspectCheckpoint can say about a checkpoint
// file without a debugger: the header facts plus, when the file
// validates, the snapshot's cursor and run shape.
type CheckpointInfo struct {
	Path    string
	Bytes   int64
	Version int // format version byte from the header (-1 if not a checkpoint at all)

	// Valid is true when magic, version, length, CRC, and gob decode all
	// passed; the fields below it are meaningful only then. Err holds
	// the validation failure otherwise.
	Valid bool
	Err   string

	Day   int
	Phase string
	Log   LogPosition
	Seed  uint64
	Days  int
}

// InspectCheckpoint reads a checkpoint file for triage: it never
// panics, and unlike ReadCheckpoint it returns as much as it can about
// an invalid file (size, claimed version, failure reason) instead of
// just an error. The returned error is reserved for I/O failures; a
// corrupt file comes back with Valid == false.
func InspectCheckpoint(path string) (*CheckpointInfo, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	info := &CheckpointInfo{Path: path, Bytes: int64(len(data)), Version: -1}
	if len(data) >= len(checkpointMagic) && bytes.Equal(data[:len(checkpointMagic)-1], checkpointMagic[:len(checkpointMagic)-1]) {
		info.Version = int(data[len(checkpointMagic)-1])
	}
	c, err := DecodeCheckpoint(data)
	if err != nil {
		info.Err = err.Error()
		return info, nil
	}
	info.Valid = true
	info.Day = int(c.State.Day)
	info.Phase = c.State.Phase.String()
	info.Log = c.Log
	info.Seed = c.State.Config.Seed
	info.Days = int(c.State.Config.Days)
	return info, nil
}
