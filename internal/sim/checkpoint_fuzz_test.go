package sim_test

// FuzzRestoreCheckpoint feeds hostile bytes through the full resume path:
// DecodeCheckpoint (framing, CRC, guarded gob decode) and, when that
// accepts, Restore. Neither may ever panic — a corrupt checkpoint must
// come back as an error, and a checkpoint that restores must land on the
// day it recorded.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sim"
)

func FuzzRestoreCheckpoint(f *testing.F) {
	// Seed with a real mid-run checkpoint plus structured corruptions of
	// it: torn tails, flipped payload bytes, and CRC-valid blobs whose
	// decoded state is nonsense (those must be caught by Restore's own
	// validation, not the framing).
	cfg := crashConfig(3)
	cfg.Days = 6
	cfg.QueriesPerDay = 100
	cfg.RegistrationsPerDay = 4
	cfg.InitialLegit = 40
	s := sim.New(cfg)
	for int(s.Day()) < 3 {
		if !s.Step() {
			f.Fatal("horizon ended before checkpoint day")
		}
	}
	dir := f.TempDir()
	path := filepath.Join(dir, "seed.frsnap")
	if err := s.WriteCheckpointFile(path, sim.LogPosition{NextSegment: 2, Events: 17}); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(valid)-1])
	f.Add([]byte{})
	f.Add([]byte("FRSNAP\x01"))
	f.Add([]byte("FRSNAP\x02junk"))
	for _, i := range []int{7, len(valid) / 3, len(valid) - 5} {
		mut := bytes.Clone(valid)
		mut[i] ^= 0x40
		f.Add(mut)
	}
	// CRC-valid but semantically hostile: re-frame a decoded checkpoint
	// after vandalizing its state.
	c, err := sim.DecodeCheckpoint(valid)
	if err != nil {
		f.Fatal(err)
	}
	c.State.Day = -1
	if err := sim.WriteCheckpoint(path, c); err != nil {
		f.Fatal(err)
	}
	if hostile, err := os.ReadFile(path); err == nil {
		f.Add(hostile)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := sim.DecodeCheckpoint(data)
		if err != nil {
			return // rejected cleanly
		}
		restored, err := sim.Restore(c.State)
		if err != nil {
			return // decoded but invalid: also fine, as long as it's an error
		}
		if restored.Day() != c.State.Day {
			t.Fatalf("restored sim at day %d, checkpoint says %d", restored.Day(), c.State.Day)
		}
	})
}
