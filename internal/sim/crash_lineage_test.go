// Lineage corruption sweep: the disaster this layer exists for is a
// checkpoint that goes bad on disk *after* the atomic write succeeded —
// the crash suite's torn tails never touch a committed snapshot. Here
// every faultinject corruption profile damages the lineage at every
// fallback depth, and the restore must still converge on the canonical
// digest of an uninterrupted run: shallower damage costs re-simulated
// days, never correctness. (`make crash` runs TestCrash*.)
package sim_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
	"repro/internal/eventlog"
	"repro/internal/faultinject"
	"repro/internal/sim"
	"repro/internal/testutil"
)

// stepWithLineage mirrors stepWithCheckpoints but saves through a
// checkpoint Lineage, optionally handing each save to a corruption
// injector (the corrupt-save-N profiles damage the file the moment it
// is committed, like bad hardware would).
func stepWithLineage(t *testing.T, s *sim.Sim, dw *eventlog.DirWriter, lin sim.Lineage, every, stopDay int, inj *faultinject.CkptInjector) *sim.Result {
	t.Helper()
	for {
		if every > 0 && int(s.Day()) > 0 && int(s.Day())%every == 0 {
			if err := dw.Rotate(); err != nil {
				t.Fatalf("rotate at day %d: %v", s.Day(), err)
			}
			pos := sim.LogPosition{NextSegment: dw.NextSegment(), Events: dw.Events()}
			if err := s.SaveCheckpointLineage(lin, pos); err != nil {
				t.Fatalf("lineage save at day %d: %v", s.Day(), err)
			}
			if inj != nil {
				if _, err := inj.OnSave(lin.Path); err != nil {
					t.Fatalf("corrupt save at day %d: %v", s.Day(), err)
				}
			}
		}
		if stopDay >= 0 && int(s.Day()) >= stopDay {
			return nil // crashed: abandon everything mid-flight
		}
		if !s.Step() {
			break
		}
	}
	return s.Finish()
}

// resumeFromLineage is the full recovery path a resumed process runs:
// repair the log, restore the newest valid checkpoint (quarantining the
// damaged ones), truncate the log to the restored segment, and
// re-simulate to the end. The deterministic rerun rewrites the dropped
// segments byte-identically, which is what makes the digest comparison
// below meaningful.
func resumeFromLineage(t *testing.T, dir string, lin sim.Lineage, every int) (*sim.Result, *sim.LineageReport) {
	t.Helper()
	if _, err := eventlog.RecoverDir(dir, true); err != nil {
		t.Fatalf("recover: %v", err)
	}
	c, rep, err := lin.Load()
	if err != nil {
		t.Fatalf("lineage load: %v (report: %s)", err, rep)
	}
	if err := eventlog.TruncateToSegment(dir, c.Log.NextSegment); err != nil {
		t.Fatal(err)
	}
	dw, err := eventlog.NewDirWriterAt(dir, c.Log.NextSegment)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.Restore(c.State)
	if err != nil {
		t.Fatalf("restore from %s: %v", rep.From, err)
	}
	s.SetEvents(dw)
	res := stepWithLineage(t, s, dw, lin, every, -1, nil)
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}
	return res, rep
}

func checkCanonical(t *testing.T, dir string, res *sim.Result, wantFP string, wantReplay testutil.CollectorDigestSet) {
	t.Helper()
	cfg := crashConfig(1234)
	if got := testutil.DigestResult(res).Fingerprint; got != wantFP {
		t.Errorf("recovered result digest %s, uninterrupted run has %s", got, wantFP)
	}
	col, err := dataset.ReplayDir(dir, cfg.Windows, cfg.SampleWindow)
	if err != nil {
		t.Fatalf("replay recovered log: %v", err)
	}
	if got := testutil.CollectorDigests(col); got != wantReplay {
		t.Errorf("replayed log digests diverge:\n got %+v\nwant %+v", got, wantReplay)
	}
}

// TestCrashLineageCorruptionFallback is the corruption acceptance
// sweep: for every damage profile × fallback depth d, crash a run, then
// damage the d newest checkpoints in its lineage. Restore must
// quarantine all d, fall back to the next snapshot, and finish with the
// canonical digest. At full depth (every generation damaged) the
// lineage reports ErrLineageCorrupt and a from-scratch run — the
// operator's last resort — still reaches the same digest.
func TestCrashLineageCorruptionFallback(t *testing.T) {
	if testing.Short() {
		t.Skip("runs many partial simulations")
	}
	wantFP, wantReplay := baselineDigests(t)
	const every = 4
	const crashDay = 17 // saves at days 4,8,12,16 → lineage holds 16,12,8

	for _, spec := range []string{"bitflip", "truncate=64", "zerofill@16:256"} {
		profile, err := faultinject.ParseCkptFaults(spec)
		if err != nil {
			t.Fatalf("parse %q: %v", spec, err)
		}
		for depth := 1; depth <= sim.DefaultRetain; depth++ {
			spec, profile, depth := spec, profile, depth
			t.Run(fmt.Sprintf("%s/depth=%d", spec, depth), func(t *testing.T) {
				cfg := crashConfig(1234)
				dir := t.TempDir()
				lin := sim.Lineage{Path: filepath.Join(t.TempDir(), "checkpoint.frsnap")}
				dw, err := eventlog.NewDirWriter(dir)
				if err != nil {
					t.Fatal(err)
				}
				cfg.Events = dw
				if res := stepWithLineage(t, sim.New(cfg), dw, lin, every, crashDay, nil); res != nil {
					t.Fatal("crash run was not abandoned")
				}

				// Damage the `depth` newest generations.
				inj := faultinject.New(uint64(depth) * 7919).Ckpt(spec, profile)
				for g := 0; g < depth; g++ {
					target := lin.Path
					if g > 0 {
						target = fmt.Sprintf("%s.%d", lin.Path, g)
					}
					if err := inj.Corrupt(target); err != nil {
						t.Fatalf("corrupt generation %d: %v", g, err)
					}
				}

				if depth == sim.DefaultRetain {
					// Every snapshot is gone: the lineage must say so
					// loudly (and keep the evidence), and a fresh run over
					// a wiped log dir is the recovery of last resort.
					if _, err := eventlog.RecoverDir(dir, true); err != nil {
						t.Fatalf("recover: %v", err)
					}
					_, rep, err := lin.Load()
					if !errors.Is(err, sim.ErrLineageCorrupt) {
						t.Fatalf("Load on fully-damaged lineage: %v, want ErrLineageCorrupt", err)
					}
					if len(rep.Quarantined) != depth {
						t.Fatalf("quarantined %v, want %d files", rep.Quarantined, depth)
					}
					if err := os.RemoveAll(dir); err != nil {
						t.Fatal(err)
					}
					dw2, err := eventlog.NewDirWriter(dir)
					if err != nil {
						t.Fatal(err)
					}
					cfg2 := crashConfig(1234)
					cfg2.Events = dw2
					res := stepWithLineage(t, sim.New(cfg2), dw2, lin, every, -1, nil)
					if err := dw2.Close(); err != nil {
						t.Fatal(err)
					}
					checkCanonical(t, dir, res, wantFP, wantReplay)
					return
				}

				res, rep := resumeFromLineage(t, dir, lin, every)
				if len(rep.Quarantined) != depth {
					t.Errorf("quarantined %v, want %d files", rep.Quarantined, depth)
				}
				for _, q := range rep.Quarantined {
					if _, err := os.Stat(q + sim.CorruptSuffix); err != nil {
						t.Errorf("quarantine evidence %s%s missing: %v", q, sim.CorruptSuffix, err)
					}
				}
				checkCanonical(t, dir, res, wantFP, wantReplay)
			})
		}
	}
}

// TestCrashLineageCorruptSaveN exercises the corrupt-save-N profile end
// to end: the damage lands at write time (the file is poisoned the
// moment it is committed) and then ages through the chain as later
// saves shift it deeper. Whether the poisoned save is the newest at
// crash time (forcing fallback) or already buried (restoring clean),
// the digest must stay canonical.
func TestCrashLineageCorruptSaveN(t *testing.T) {
	if testing.Short() {
		t.Skip("runs partial simulations")
	}
	wantFP, wantReplay := baselineDigests(t)
	const every = 4
	const crashDay = 17 // saves 1..4 at days 4,8,12,16

	for _, n := range []int{2, 4} { // save 2 ends up buried at ck.2; save 4 is the newest
		n := n
		t.Run(fmt.Sprintf("save=%d", n), func(t *testing.T) {
			spec := fmt.Sprintf("bitflip,save=%d", n)
			profile, err := faultinject.ParseCkptFaults(spec)
			if err != nil {
				t.Fatal(err)
			}
			cfg := crashConfig(1234)
			dir := t.TempDir()
			lin := sim.Lineage{Path: filepath.Join(t.TempDir(), "checkpoint.frsnap")}
			dw, err := eventlog.NewDirWriter(dir)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Events = dw
			inj := faultinject.New(42).Ckpt("lineage", profile)
			if res := stepWithLineage(t, sim.New(cfg), dw, lin, every, crashDay, inj); res != nil {
				t.Fatal("crash run was not abandoned")
			}

			res, rep := resumeFromLineage(t, dir, lin, every)
			wantQuarantine := 0
			if n == 4 {
				wantQuarantine = 1 // the newest snapshot was the poisoned one
			}
			if len(rep.Quarantined) != wantQuarantine {
				t.Errorf("quarantined %v, want %d files", rep.Quarantined, wantQuarantine)
			}
			checkCanonical(t, dir, res, wantFP, wantReplay)
		})
	}
}
