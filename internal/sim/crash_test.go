// Crash-chaos suite: the checkpoint/recovery subsystem's contract is
// that kill -9 at an arbitrary moment costs nothing but the tail since
// the last checkpoint — recover + restore + continue lands on the exact
// deterministic trajectory of a run that never crashed. These tests
// prove it at dataset-digest granularity across a sweep of seeded kill
// points, tearing the event log's unsealed tail the way a dead process
// would. (`make crash` runs TestCrash*.)
package sim_test

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
	"repro/internal/eventlog"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/testutil"
)

// crashConfig is deliberately small: the sweep below simulates a couple
// dozen partial runs.
func crashConfig(seed uint64) sim.Config {
	cfg := sim.SmallConfig()
	cfg.Seed = seed
	cfg.Days = 26
	cfg.QueriesPerDay = 350
	cfg.RegistrationsPerDay = 10
	cfg.InitialLegit = 150
	return cfg
}

// stepWithCheckpoints advances s day by day, rotating the log and
// writing a checkpoint every `every` days. With stopDay >= 0 it abandons
// the run at that day boundary — no Finish, no log Close — exactly the
// state a killed process leaves. Otherwise it runs to completion.
func stepWithCheckpoints(t *testing.T, s *sim.Sim, dw *eventlog.DirWriter, ckpt string, every int, stopDay int) *sim.Result {
	t.Helper()
	for {
		if every > 0 && int(s.Day()) > 0 && int(s.Day())%every == 0 {
			if err := dw.Rotate(); err != nil {
				t.Fatalf("rotate at day %d: %v", s.Day(), err)
			}
			pos := sim.LogPosition{NextSegment: dw.NextSegment(), Events: dw.Events()}
			if err := s.WriteCheckpointFile(ckpt, pos); err != nil {
				t.Fatalf("checkpoint at day %d: %v", s.Day(), err)
			}
		}
		if stopDay >= 0 && int(s.Day()) >= stopDay {
			return nil // crashed: abandon everything mid-flight
		}
		if !s.Step() {
			break
		}
	}
	return s.Finish()
}

// crashBaseline memoizes the uninterrupted reference run: its result
// digest and the replay digests of its event log.
var crashBaseline struct {
	fingerprint string
	replay      testutil.CollectorDigestSet
}

func baselineDigests(t *testing.T) (string, testutil.CollectorDigestSet) {
	t.Helper()
	if crashBaseline.fingerprint == "" {
		cfg := crashConfig(1234)
		dir := t.TempDir()
		dw, err := eventlog.NewDirWriter(dir)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Events = dw
		s := sim.New(cfg)
		res := stepWithCheckpoints(t, s, dw, "", 0, -1)
		if err := dw.Close(); err != nil {
			t.Fatal(err)
		}
		// Digest equality below is only meaningful if the run does things.
		if res.Clicks == 0 || res.FraudClicks == 0 || res.Registrations == 0 {
			t.Fatalf("baseline run is degenerate: %d clicks, %d fraud, %d regs",
				res.Clicks, res.FraudClicks, res.Registrations)
		}
		crashBaseline.fingerprint = testutil.DigestResult(res).Fingerprint
		col, err := dataset.ReplayDir(dir, cfg.Windows, cfg.SampleWindow)
		if err != nil {
			t.Fatal(err)
		}
		crashBaseline.replay = testutil.CollectorDigests(col)
	}
	return crashBaseline.fingerprint, crashBaseline.replay
}

// TestCrashResumeDigestIdentical is the acceptance sweep: for 21 seeded
// kill points spread over the horizon, crash the run (abandoning the
// writer and tearing the unsealed tail at a seeded byte offset), then
// recover the log, restore the latest checkpoint, and run to the end.
// Both the final result digest and the replayed-log digests must equal
// the uninterrupted run's, every time.
func TestCrashResumeDigestIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs many partial simulations")
	}
	wantFP, wantReplay := baselineDigests(t)
	const every = 4

	for crashDay := 5; crashDay <= 25; crashDay++ {
		crashDay := crashDay
		t.Run(fmt.Sprintf("killday=%d", crashDay), func(t *testing.T) {
			cfg := crashConfig(1234)
			dir := t.TempDir()
			ckpt := filepath.Join(t.TempDir(), "checkpoint.frsnap")
			dw, err := eventlog.NewDirWriter(dir)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Events = dw
			if res := stepWithCheckpoints(t, sim.New(cfg), dw, ckpt, every, crashDay); res != nil {
				t.Fatal("crash run was not abandoned")
			}

			// Tear the unsealed tail at a seeded offset, simulating the
			// final write dying partway to the platter.
			rng := stats.NewRNG(uint64(crashDay) * 7919)
			tmps, _ := filepath.Glob(filepath.Join(dir, "events-*.evlog"+eventlog.TmpSuffix))
			for _, tmp := range tmps {
				b, err := os.ReadFile(tmp)
				if err != nil {
					t.Fatal(err)
				}
				keep := int(rng.Float64() * float64(len(b)+1))
				if err := os.WriteFile(tmp, b[:keep], 0o644); err != nil {
					t.Fatal(err)
				}
			}

			// Recover + restore + continue: the resume path fraudsim runs.
			if _, err := eventlog.RecoverDir(dir, true); err != nil {
				t.Fatalf("recover: %v", err)
			}
			c, err := sim.ReadCheckpoint(ckpt)
			if err != nil {
				t.Fatalf("read checkpoint: %v", err)
			}
			if gotDay := int(c.State.Day); gotDay > crashDay || crashDay-gotDay >= 2*every {
				t.Fatalf("checkpoint at day %d is stale for crash at day %d", gotDay, crashDay)
			}
			if err := eventlog.TruncateToSegment(dir, c.Log.NextSegment); err != nil {
				t.Fatal(err)
			}
			dw2, err := eventlog.NewDirWriterAt(dir, c.Log.NextSegment)
			if err != nil {
				t.Fatal(err)
			}
			s2, err := sim.Restore(c.State)
			if err != nil {
				t.Fatalf("restore: %v", err)
			}
			s2.SetEvents(dw2)
			res := stepWithCheckpoints(t, s2, dw2, ckpt, every, -1)
			if err := dw2.Close(); err != nil {
				t.Fatal(err)
			}

			if got := testutil.DigestResult(res).Fingerprint; got != wantFP {
				t.Errorf("resumed result digest %s, uninterrupted run has %s", got, wantFP)
			}
			col, err := dataset.ReplayDir(dir, cfg.Windows, cfg.SampleWindow)
			if err != nil {
				t.Fatalf("replay recovered log: %v", err)
			}
			if got := testutil.CollectorDigests(col); got != wantReplay {
				t.Errorf("replayed log digests diverge:\n got %+v\nwant %+v", got, wantReplay)
			}
		})
	}
}

// TestCrashCheckpointRoundTrip proves Snapshot/Restore is lossless
// mid-run: snapshot at a day boundary, serialize, restore, and both
// copies must finish with identical digests. Snapshot encoding is also
// byte-deterministic, so checkpoint files diff cleanly.
func TestCrashCheckpointRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	cfg := crashConfig(77)
	s := sim.New(cfg)
	for int(s.Day()) < 10 {
		if !s.Step() {
			t.Fatal("horizon ended before snapshot day")
		}
	}
	encode := func() []byte {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(s.Snapshot()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	enc1, enc2 := encode(), encode()
	if !bytes.Equal(enc1, enc2) {
		t.Fatal("snapshot encoding is not byte-deterministic")
	}

	var st sim.State
	if err := gob.NewDecoder(bytes.NewReader(enc1)).Decode(&st); err != nil {
		t.Fatal(err)
	}
	restored, err := sim.Restore(&st)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Day() != s.Day() {
		t.Fatalf("restored day %d, want %d", restored.Day(), s.Day())
	}
	finish := func(x *sim.Sim) string {
		for x.Step() {
		}
		return testutil.DigestResult(x.Finish()).Fingerprint
	}
	if a, b := finish(s), finish(restored); a != b {
		t.Fatalf("restored run diverged: %s vs %s", b, a)
	}
}

// TestCrashCheckpointFileRoundTrip covers the file layer: atomic write,
// validated read, and rejection of a corrupted byte.
func TestCrashCheckpointFileRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	cfg := crashConfig(5)
	cfg.Days = 8
	s := sim.New(cfg)
	for int(s.Day()) < 4 {
		s.Step()
	}
	path := filepath.Join(t.TempDir(), "ck.frsnap")
	if err := s.WriteCheckpointFile(path, sim.LogPosition{NextSegment: 3, Events: 42}); err != nil {
		t.Fatal(err)
	}
	c, err := sim.ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Log.NextSegment != 3 || c.Log.Events != 42 || c.State.Day != s.Day() {
		t.Fatalf("checkpoint round trip: %+v, day %d", c.Log, c.State.Day)
	}
	if _, err := sim.Restore(c.State); err != nil {
		t.Fatal(err)
	}

	// Any single corrupted byte must be caught by the CRC (or the magic
	// check), never decoded into a half-broken sim.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 6, len(b) / 2, len(b) - 1} {
		mut := bytes.Clone(b)
		mut[i] ^= 0x20
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := sim.ReadCheckpoint(path); err == nil {
			t.Errorf("corrupted byte %d accepted", i)
		}
	}
}
