package sim

// The day loop, decomposed into phases (DESIGN.md §8). Each simulated
// day runs four phases in a fixed order:
//
//	arrivals  — policy flags, registrations, re-registrations, account
//	            takeovers (sequential: one arrival RNG stream)
//	agents    — campaign management: account closes, then one
//	            plan/apply step per live agent
//	serving   — queries, auctions, clicks, billing (serve.go)
//	detection — the nightly sweep plus actor re-registration reactions
//
// The agent and detection phases follow the same freeze-then-merge
// contract as serving: all cross-account mutation happens on the
// simulation goroutine at a phase barrier, in canonical order, while the
// embarrassingly parallel half (per-agent planning from private RNG
// streams; per-account detector scans from per-account RNG streams) fans
// out across the Workers pool. Worker count is therefore a pure
// throughput knob for the whole day loop — every seeded byte (digests,
// checkpoints, event logs) is identical at any Workers value, proven by
// the differential matrix in dayloop_test.go.
//
// StepPhase exposes the phase boundaries to callers: checkpoints may be
// taken between any two phases, not just between days, and resumed at a
// different worker count.

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/agents"
	"repro/internal/simclock"
	"repro/internal/stats"
)

// Phase identifies the sub-phase of the day loop a Sim will run next.
type Phase uint8

const (
	PhaseArrivals Phase = iota
	PhaseAgents
	PhaseServing
	PhaseDetection
)

// String names a phase for diagnostics.
func (p Phase) String() string {
	switch p {
	case PhaseArrivals:
		return "arrivals"
	case PhaseAgents:
		return "agents"
	case PhaseServing:
		return "serving"
	case PhaseDetection:
		return "detection"
	}
	return "invalid"
}

// PhaseTimes accumulates wall time per day-loop phase; attach with
// SetPhaseTimes to profile where a day's cost goes (see the dayloop
// benchmark harness).
type PhaseTimes struct {
	Arrivals  time.Duration
	Agents    time.Duration
	Serving   time.Duration
	Detection time.Duration
}

// SetPhaseTimes attaches (or with nil detaches) a per-phase timing
// accumulator. Timing reads the wall clock only; it never perturbs a
// seeded run.
func (s *Sim) SetPhaseTimes(t *PhaseTimes) { s.timing = t }

// PhaseAllocs accumulates heap allocation counts — runtime.MemStats
// Mallocs deltas — per day-loop phase; attach with SetPhaseAllocs. Each
// ReadMemStats costs a brief stop-the-world, so the benchmark harness
// measures allocations in a separate untimed pass rather than polluting
// the wall-clock numbers (see measureDayloop). The counters are global to
// the process: concurrent allocation outside the sim is attributed to
// whatever phase is running, which is fine for the regression pins this
// feeds (they compare like against like).
type PhaseAllocs struct {
	Arrivals  uint64
	Agents    uint64
	Serving   uint64
	Detection uint64
}

// Total sums the per-phase allocation counts.
func (a *PhaseAllocs) Total() uint64 {
	return a.Arrivals + a.Agents + a.Serving + a.Detection
}

// SetPhaseAllocs attaches (or with nil detaches) a per-phase allocation
// accumulator. Counting only reads runtime statistics; it never perturbs
// a seeded run.
func (s *Sim) SetPhaseAllocs(a *PhaseAllocs) { s.allocs = a }

// mallocs reads the cumulative heap allocation counter.
func mallocs() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// Phase returns the next phase StepPhase will run.
func (s *Sim) Phase() Phase { return s.phase }

// StepPhase advances the simulation by one phase of the current day. The
// first call on a fresh Sim seeds the initial population. It returns
// false — without running anything — once the horizon is reached.
// Snapshot may be called between any two StepPhase calls, so a
// checkpoint can be taken mid-day at a phase boundary.
func (s *Sim) StepPhase() bool {
	if s.day >= s.cfg.Days {
		return false
	}
	if s.started.IsZero() {
		s.started = time.Now()
	}
	if !s.seeded {
		s.seedInitialPopulation()
		s.seeded = true
	}
	day := s.day
	var t0 time.Time
	if s.timing != nil {
		t0 = time.Now()
	}
	var m0 uint64
	if s.allocs != nil {
		m0 = mallocs()
	}
	switch s.phase {
	case PhaseArrivals:
		s.arrivalsPhase(day)
		if s.timing != nil {
			s.timing.Arrivals += time.Since(t0)
		}
		if s.allocs != nil {
			s.allocs.Arrivals += mallocs() - m0
		}
		s.phase = PhaseAgents
	case PhaseAgents:
		s.agentPhase(day)
		if s.timing != nil {
			s.timing.Agents += time.Since(t0)
		}
		if s.allocs != nil {
			s.allocs.Agents += mallocs() - m0
		}
		s.phase = PhaseServing
	case PhaseServing:
		s.serveQueries(day)
		if s.timing != nil {
			s.timing.Serving += time.Since(t0)
		}
		if s.allocs != nil {
			s.allocs.Serving += mallocs() - m0
		}
		s.phase = PhaseDetection
	case PhaseDetection:
		s.detectionPhase(day)
		if s.timing != nil {
			s.timing.Detection += time.Since(t0)
		}
		if s.allocs != nil {
			s.allocs.Detection += mallocs() - m0
		}
		s.phase = PhaseArrivals
		s.day++
	}
	return s.day < s.cfg.Days
}

// arrivalsPhase runs policy events, fresh registrations, scheduled
// re-registrations, and account takeovers. It is sequential: every
// decision draws from the single arrival stream.
func (s *Sim) arrivalsPhase(day simclock.Day) {
	// Policy events visible to arriving fraudsters.
	if day == s.cfg.Detection.TechSupportBanDay {
		s.factory.SetTechSupportBanned(true)
	}

	// Arrivals: fresh registrations plus returning (re-registering)
	// fraudulent actors.
	n := stats.Poisson(s.arrRNG, s.cfg.RegistrationsPerDay)
	share := s.fraudShare(day)
	for i := 0; i < n; i++ {
		var prof agents.Profile
		if s.arrRNG.Bool(share) {
			prof = s.factory.NewFraud()
		} else {
			prof = s.factory.NewLegit()
		}
		s.register(prof, simclock.StampAt(day, s.arrRNG.Float64()))
	}
	if returning := s.pendingReregs[day]; len(returning) > 0 {
		delete(s.pendingReregs, day)
		for _, prof := range returning {
			s.register(prof, simclock.StampAt(day, s.arrRNG.Float64()))
		}
	}

	// Account takeovers of mature legitimate advertisers (§2).
	s.compromiseAccounts(day)
}

// agentPhase runs one day of campaign management. A sequential pre-pass
// compacts dead agents out of the live list and closes accounts whose
// business has run its course (those draws come from the shared arrival
// stream, in live order); the surviving agents then plan and apply their
// campaign steps via runAgents.
func (s *Sim) agentPhase(day simclock.Day) {
	liveOut := s.live[:0]
	for _, a := range s.live {
		acct := s.p.MustAccount(a.Account)
		if !acct.Alive() {
			continue
		}
		if a.LifetimeDays > 0 && !acct.Fraud &&
			float64(day)-float64(acct.Created) > a.LifetimeDays {
			if err := s.p.Close(a.Account, simclock.StampAt(day, s.arrRNG.Float64())); err == nil {
				continue
			}
		}
		liveOut = append(liveOut, a)
	}
	s.live = liveOut
	s.runAgents(day)
}

// runAgents steps every live agent once. With one worker the fused
// plan+apply loop runs inline. With more, planning — all RNG draws,
// against frozen account state — fans out over contiguous blocks of the
// live list, and the recorded plans are applied on this goroutine in
// live order, so platform mutations, collector folds and event bytes
// land exactly as the fused loop would have landed them. (Plans only
// read the planning agent's own account, so a plan never depends on
// another agent's apply; the fused and staged forms are equivalent.)
func (s *Sim) runAgents(day simclock.Day) {
	n := len(s.live)
	w := s.resolveWorkers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for _, a := range s.live {
			s.runtime.Step(a, day)
		}
		return
	}
	for len(s.plans) < n {
		s.plans = append(s.plans, agents.StepPlan{})
	}
	plans := s.plans[:n]
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for i := k * n / w; i < (k+1)*n/w; i++ {
				s.runtime.PlanStep(s.live[i], day, &plans[i])
			}
		}(k)
	}
	wg.Wait()
	for i, a := range s.live {
		s.runtime.ApplyStep(a, day, &plans[i])
	}
}

// detectionPhase runs the nightly sweep and the caught actors'
// re-registration reactions, and maintains the live fraud-account
// counter the progress callback reports.
func (s *Sim) detectionPhase(day simclock.Day) {
	s.pipeline.SetWorkers(s.resolveWorkers())
	for _, id := range s.pipeline.EndOfDay(day) {
		if s.p.MustAccount(id).Fraud {
			s.fraudLive--
		}
		s.maybeReregister(id, day)
	}
}
