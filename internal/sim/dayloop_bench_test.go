package sim

// Day-loop benchmark harness. BenchmarkStepDay times whole simulated
// days — arrivals, agents, serving, detection — against the same warmed
// MediumConfig world the serving benchmark uses, per worker count, with
// the per-phase wall-time split reported alongside time/op so the
// agent/detection scaling is visible separately from serving's.
//
// TestWriteDayloopBenchJSON is the `make bench-dayloop` entry point: it
// measures workers ∈ {1, 2, 4} and writes BENCH_dayloop.json at the repo
// root, phase split included. Like the serving report it records
// GOMAXPROCS — on a single-CPU host the parallel numbers are necessarily
// ~1×, and the file says so rather than pretending otherwise.

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"
)

var benchDayloopOut = flag.String("bench-dayloop-out", "",
	"write the day-loop benchmark report JSON to this file (see make bench-dayloop)")

// BenchmarkStepDay times one full simulated day per worker count. The
// warmed horizon is finite, so the sim is re-restored (off the clock)
// whenever an iteration would run past it.
func BenchmarkStepDay(b *testing.B) {
	state, _, cfg := mediumServingState(b)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var pt PhaseTimes
			s := restoreServing(b, state, workers)
			s.SetPhaseTimes(&pt)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if s.day >= cfg.Days {
					b.StopTimer()
					s = restoreServing(b, state, workers)
					s.SetPhaseTimes(&pt)
					b.StartTimer()
				}
				s.Step()
			}
			b.StopTimer()
			days := float64(b.N)
			b.ReportMetric(float64(pt.Agents.Nanoseconds())/days, "agents-ns/day")
			b.ReportMetric(float64(pt.Serving.Nanoseconds())/days, "serving-ns/day")
			b.ReportMetric(float64(pt.Detection.Nanoseconds())/days, "detection-ns/day")
		})
	}
}

// DayloopBenchMode is one measured worker configuration, with the day
// cost split by phase — wall time from the timed pass, heap allocation
// counts from a separate untimed pass (see measureDayloop).
type DayloopBenchMode struct {
	Workers           int     `json:"workers"`
	MeasuredDays      int     `json:"measured_days"`
	NsPerDay          float64 `json:"ns_per_day"`
	ArrivalsNsPerDay  float64 `json:"arrivals_ns_per_day"`
	AgentsNsPerDay    float64 `json:"agents_ns_per_day"`
	ServingNsPerDay   float64 `json:"serving_ns_per_day"`
	DetectionNsPerDay float64 `json:"detection_ns_per_day"`

	AllocsPerDay          float64 `json:"allocs_per_day"`
	ArrivalsAllocsPerDay  float64 `json:"arrivals_allocs_per_day"`
	AgentsAllocsPerDay    float64 `json:"agents_allocs_per_day"`
	ServingAllocsPerDay   float64 `json:"serving_allocs_per_day"`
	DetectionAllocsPerDay float64 `json:"detection_allocs_per_day"`
}

// DayloopBenchReport is the BENCH_dayloop.json schema.
type DayloopBenchReport struct {
	Bench      string             `json:"bench"`
	Config     string             `json:"config"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	GoVersion  string             `json:"go_version"`
	Timestamp  string             `json:"timestamp"`
	Modes      []DayloopBenchMode `json:"modes"`
	Note       string             `json:"note"`
}

// measureDayloop times `days` full simulated days at the given worker
// count against a restored copy of the warmed state, splitting the cost
// by phase.
func measureDayloop(tb testing.TB, state []byte, workers, days int) DayloopBenchMode {
	tb.Helper()
	s := restoreServing(tb, state, workers)
	s.Step() // untimed shakedown: plan scratch, shard buffers, page cache
	var pt PhaseTimes
	s.SetPhaseTimes(&pt)
	start := time.Now()
	for i := 0; i < days; i++ {
		if s.day >= s.cfg.Days {
			tb.Fatal("warmed horizon too short for the measurement window")
		}
		s.Step()
	}
	elapsed := time.Since(start)
	d := float64(days)

	// Allocation pass, off the clock: a fresh restore walks the same days
	// with the PhaseAllocs hook attached. Separate from the timed loop so
	// the wall-clock numbers never pay the hook's ReadMemStats
	// stop-the-world pauses.
	s = restoreServing(tb, state, workers)
	s.Step() // same shakedown as the timed pass
	var pa PhaseAllocs
	s.SetPhaseAllocs(&pa)
	total0 := mallocs()
	for i := 0; i < days; i++ {
		if s.day >= s.cfg.Days {
			tb.Fatal("warmed horizon too short for the allocation window")
		}
		s.Step()
	}
	total := mallocs() - total0

	return DayloopBenchMode{
		Workers:           workers,
		MeasuredDays:      days,
		NsPerDay:          float64(elapsed.Nanoseconds()) / d,
		ArrivalsNsPerDay:  float64(pt.Arrivals.Nanoseconds()) / d,
		AgentsNsPerDay:    float64(pt.Agents.Nanoseconds()) / d,
		ServingNsPerDay:   float64(pt.Serving.Nanoseconds()) / d,
		DetectionNsPerDay: float64(pt.Detection.Nanoseconds()) / d,

		AllocsPerDay:          float64(total) / d,
		ArrivalsAllocsPerDay:  float64(pa.Arrivals) / d,
		AgentsAllocsPerDay:    float64(pa.Agents) / d,
		ServingAllocsPerDay:   float64(pa.Serving) / d,
		DetectionAllocsPerDay: float64(pa.Detection) / d,
	}
}

// dayloopBenchReport measures each worker count over the given warmed
// state and assembles the report.
func dayloopBenchReport(tb testing.TB, state []byte, cfgName string, workerCounts []int, days int) DayloopBenchReport {
	procs := runtime.GOMAXPROCS(0)
	var modes []DayloopBenchMode
	for _, w := range workerCounts {
		modes = append(modes, measureDayloop(tb, state, w, days))
	}
	note := "wall time and heap allocations per simulated day, split by phase (arrivals is " +
		"sequential by design; agents, serving and detection parallelize with workers); " +
		"allocation counts come from an untimed second pass over the same days"
	if procs == 1 {
		note += "; HOST HAS 1 CPU: multi-worker modes run time-sliced on one core, " +
			"so the parallel speedup is not observable here — rerun on a multi-core host"
	}
	return DayloopBenchReport{
		Bench:      "dayloop",
		Config:     cfgName,
		GOMAXPROCS: procs,
		GoVersion:  runtime.Version(),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Modes:      modes,
		Note:       note,
	}
}

// TestWriteDayloopBenchJSON is driven by `make bench-dayloop`: with
// -bench-dayloop-out it measures MediumConfig whole-day throughput per
// worker count and writes the JSON report; without the flag it skips.
func TestWriteDayloopBenchJSON(t *testing.T) {
	if *benchDayloopOut == "" {
		t.Skip("pass -bench-dayloop-out (or run `make bench-dayloop`)")
	}
	state, _, _ := mediumServingState(t)
	rep := dayloopBenchReport(t, state, "MediumConfig", []int{1, 2, 4}, 6)
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*benchDayloopOut, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s:\n%s", *benchDayloopOut, b)
}

// TestDayloopBenchReportSmoke keeps the harness under test on every
// `go test` run: a tiny config flows through warmup, measurement and
// serialization, the phase split accounts for (almost all of) the day
// cost, and the report survives a JSON round trip.
func TestDayloopBenchReportSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a small simulation")
	}
	cfg := SmallConfig()
	cfg.Days = 30
	cfg.QueriesPerDay = 300
	cfg.InitialLegit = 120
	state, _ := warmServingState(t, cfg, 20)
	rep := dayloopBenchReport(t, state, "smoke", []int{1, 2}, 2)
	if len(rep.Modes) != 2 || rep.Modes[0].Workers != 1 || rep.Modes[1].Workers != 2 {
		t.Fatalf("unexpected modes: %+v", rep.Modes)
	}
	for _, m := range rep.Modes {
		if m.NsPerDay <= 0 {
			t.Fatalf("degenerate measurement: %+v", m)
		}
		phases := m.ArrivalsNsPerDay + m.AgentsNsPerDay + m.ServingNsPerDay + m.DetectionNsPerDay
		if phases <= 0 || phases > m.NsPerDay*1.01 {
			t.Fatalf("phase split inconsistent with day total: %+v", m)
		}
		if m.AllocsPerDay <= 0 {
			t.Fatalf("allocation pass measured nothing: %+v", m)
		}
		allocPhases := m.ArrivalsAllocsPerDay + m.AgentsAllocsPerDay + m.ServingAllocsPerDay + m.DetectionAllocsPerDay
		// The whole-day total brackets the phase brackets (plus the hook's
		// own ReadMemStats bookkeeping), so the split can never exceed it
		// by more than that slack.
		if allocPhases <= 0 || allocPhases > m.AllocsPerDay+64 {
			t.Fatalf("allocation split inconsistent with day total: %+v", m)
		}
	}
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back DayloopBenchReport
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.GOMAXPROCS != runtime.GOMAXPROCS(0) || back.Bench != "dayloop" {
		t.Fatalf("report round trip: %+v", back)
	}
}
