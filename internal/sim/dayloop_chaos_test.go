// Chaos coverage for the parallel day loop: event recording is strictly
// best-effort, so a failing event sink may degrade the log (sticky
// writer errors, dropped records) but must never deadlock a phase
// barrier, lose a staged shard mutation, or perturb a seeded trajectory.
// Running under -race (make chaos) also proves the fault path is free of
// data races at workers > 1.
package sim_test

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/eventlog"
	"repro/internal/faultinject"
	"repro/internal/sim"
	"repro/internal/testutil"
)

// chaosConfig is deliberately smaller than matrixConfig: the chaos suite
// cares about fault handling at every phase barrier, not window-lane
// coverage.
func chaosConfig(workers int) sim.Config {
	cfg := goldenConfig()
	cfg.Seed = 5
	cfg.Days = 60
	cfg.QueriesPerDay = 400
	cfg.Workers = workers
	return cfg
}

// TestChaosFaultyEventSinkDayLoop runs the parallel day loop against an
// event log whose every underlying write fails from record one — a full
// disk under a live run. The run must complete (no phase barrier waits
// on a sink), the digest must match a fault-free run bit for bit (event
// recording is observation, never simulation state), and the writer must
// account for the degradation it absorbed.
func TestChaosFaultyEventSinkDayLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two simulations")
	}
	want := digestBytes(t, chaosConfig(4))

	inj := faultinject.New(11)
	w := eventlog.NewWriter(inj.Writer("dayloop", io.Discard, faultinject.WriteFaults{ErrorRate: 1}))
	cfg := chaosConfig(4)
	cfg.Events = w
	got, err := testutil.MarshalStable(testutil.DigestResult(sim.New(cfg).Run()))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("failing event sink perturbed the simulation:\n%s",
			testutil.Diff(string(want), string(got)))
	}

	// Recording degraded as designed: the first write failed, the error
	// stuck, and every later event was dropped — all accounted for.
	if w.Err() == nil {
		t.Fatal("event writer absorbed no failure; the fault profile never fired")
	}
	if w.Events() != 0 {
		t.Fatalf("writer claims %d events persisted through a 100%% failing sink", w.Events())
	}
	if w.Dropped() == 0 {
		t.Fatal("no events counted as dropped")
	}
	if st := inj.WriterStats("dayloop"); st.Failed == 0 || st.Failed != st.Writes {
		t.Fatalf("injector stats inconsistent: %+v", st)
	}
}

// TestChaosTornEventSinkDayLoop kills the event log mid-run — a crash
// profile that tears one record and fails every write after it. The
// agent and detection phases must keep applying their staged mutations
// (identical digests), and the writer must report the torn tail rather
// than absorbing it silently.
func TestChaosTornEventSinkDayLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two simulations")
	}
	want := digestBytes(t, chaosConfig(3))

	inj := faultinject.New(29)
	w := eventlog.NewWriter(inj.Writer("dayloop", io.Discard, faultinject.WriteFaults{KillAfterWrites: 500}))
	cfg := chaosConfig(3)
	cfg.Events = w
	got, err := testutil.MarshalStable(testutil.DigestResult(sim.New(cfg).Run()))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("mid-run event-log death perturbed the simulation:\n%s",
			testutil.Diff(string(want), string(got)))
	}
	if w.Err() != faultinject.ErrInjectedCrash {
		t.Fatalf("writer error = %v, want the injected crash", w.Err())
	}
	// The first underlying write is the log's magic header, so 500
	// surviving writes carry exactly 499 event frames.
	if w.Events() != 499 {
		t.Fatalf("writer persisted %d events, want exactly the 499 before the crash", w.Events())
	}
	if w.Dropped() == 0 {
		t.Fatal("no events counted as dropped after the crash point")
	}
}
