// Day-loop parallelism suite: dayloop.go extends the Workers contract
// from serving to the whole day — agent planning and the nightly
// detection sweep fan out over the same pool — and these tests prove the
// extended contract the same three ways serve_test.go proves the serving
// half: a full-run differential matrix (digests AND merged event logs,
// byte for byte, across workers × seeds), a checkpoint taken at a
// mid-day phase boundary and resumed at a different worker count, and
// the phase-cursor state machine itself. CI runs the matrix under -race,
// which doubles as the data-race proof for the plan/apply and
// scan/enforce stagings.
package sim_test

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"testing"

	"repro/internal/eventlog"
	"repro/internal/sim"
	"repro/internal/testutil"
)

// runDigestAndLog runs a config to completion with a slice sink attached
// and returns the canonical digest bytes plus every event the run
// emitted, in emission order.
func runDigestAndLog(t *testing.T, cfg sim.Config) ([]byte, []eventlog.Event) {
	t.Helper()
	var sink eventlog.SliceSink
	cfg.Events = &sink
	b, err := testutil.MarshalStable(testutil.DigestResult(sim.New(cfg).Run()))
	if err != nil {
		t.Fatal(err)
	}
	return b, sink.Events
}

// diffEvents fails the test at the first record where two event streams
// disagree (or on a length mismatch).
func diffEvents(t *testing.T, want, got []eventlog.Event) {
	t.Helper()
	n := len(want)
	if len(got) < n {
		n = len(got)
	}
	for i := 0; i < n; i++ {
		if want[i] != got[i] {
			t.Fatalf("event %d differs:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
	if len(want) != len(got) {
		t.Fatalf("event log has %d records, sequential log has %d", len(got), len(want))
	}
}

// TestParallelDayLoopMatrix is the acceptance matrix for the whole day
// loop: for each seed, Workers ∈ {2, 5} must reproduce the sequential
// run's dataset digests AND its event log byte for byte — registrations,
// campaign edits, impressions, detections, every record in the same
// order. Unlike the serving-only matrix this exercises the agent
// plan/apply staging and the sharded detection sweep on every simulated
// day.
func TestParallelDayLoopMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a grid of simulations")
	}
	for _, seed := range []uint64{11, 23} {
		seqDigest, seqLog := runDigestAndLog(t, matrixConfig(seed, 1))
		for _, workers := range []int{2, 5} {
			t.Run(fmt.Sprintf("seed=%d/workers=%d", seed, workers), func(t *testing.T) {
				gotDigest, gotLog := runDigestAndLog(t, matrixConfig(seed, workers))
				if !bytes.Equal(seqDigest, gotDigest) {
					t.Fatalf("workers=%d diverged from sequential day loop:\n%s",
						workers, testutil.Diff(string(seqDigest), string(gotDigest)))
				}
				diffEvents(t, seqLog, gotLog)
			})
		}
	}
}

// TestPhaseBoundaryCheckpointResume checkpoints between the agent and
// serving phases of a mid-run day — a boundary that only exists because
// StepPhase exposes the phase cursor — and proves the snapshot is
// portable across worker counts: a workers=3 run snapshotted mid-day,
// restored, and finished at workers=6 lands on the same digest as an
// uninterrupted sequential run, and so does the donor run it was
// snapshotted from.
func TestPhaseBoundaryCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several partial simulations")
	}
	const snapDay = 100 // inside Y1Q2, so window lanes are mid-accumulation

	s := sim.New(matrixConfig(17, 3))
	for int(s.Day()) < snapDay || s.Phase() != sim.PhaseServing {
		if !s.StepPhase() {
			t.Fatal("horizon ended before the snapshot boundary")
		}
	}

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var st sim.State
	if err := gob.NewDecoder(&buf).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resumed, err := sim.Restore(&st)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Phase() != sim.PhaseServing || int(resumed.Day()) != snapDay {
		t.Fatalf("restored at day %d phase %s, want day %d phase %s",
			resumed.Day(), resumed.Phase(), snapDay, sim.PhaseServing)
	}
	resumed.SetWorkers(6)

	finish := func(s *sim.Sim) []byte {
		t.Helper()
		for s.Step() {
		}
		b, err := testutil.MarshalStable(testutil.DigestResult(s.Finish()))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	want := digestBytes(t, matrixConfig(17, 1))
	if got := finish(resumed); !bytes.Equal(want, got) {
		t.Fatalf("resume at a different worker count diverged:\n%s",
			testutil.Diff(string(want), string(got)))
	}
	if got := finish(s); !bytes.Equal(want, got) {
		t.Fatalf("donor run diverged after its mid-phase snapshot:\n%s",
			testutil.Diff(string(want), string(got)))
	}
}

// TestStepPhaseSequencing pins the phase state machine: phases cycle
// arrivals → agents → serving → detection, the day advances only on the
// detection → arrivals edge, and StepPhase refuses to run past the
// horizon.
func TestStepPhaseSequencing(t *testing.T) {
	cfg := matrixConfig(7, 2)
	cfg.Days = 3
	cfg.QueriesPerDay = 100
	cfg.InitialLegit = 30
	s := sim.New(cfg)

	order := []sim.Phase{sim.PhaseArrivals, sim.PhaseAgents, sim.PhaseServing, sim.PhaseDetection}
	for day := 0; day < int(cfg.Days); day++ {
		for _, want := range order {
			if s.Phase() != want {
				t.Fatalf("day %d: phase = %s, want %s", day, s.Phase(), want)
			}
			if int(s.Day()) != day {
				t.Fatalf("phase %s: day = %d, want %d", want, s.Day(), day)
			}
			s.StepPhase()
		}
	}
	if s.Day() != cfg.Days || s.Phase() != sim.PhaseArrivals {
		t.Fatalf("after the horizon: day %d phase %s", s.Day(), s.Phase())
	}
	if s.StepPhase() {
		t.Fatal("StepPhase ran past the horizon")
	}
}
