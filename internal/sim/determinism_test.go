// Determinism suite: the measurement methodology rests on sim.go's claim
// that runs are "all deterministic under a single seed". These tests
// prove it at the dataset level — not just headline counters — so the
// golden digests in golden_test.go are trustworthy regression anchors,
// and so future concurrency work (sharding, batching, async serving)
// cannot silently introduce scheduling-dependent output.
package sim_test

import (
	"bytes"
	"runtime"
	"testing"

	"repro/internal/eventlog"
	"repro/internal/sim"
	"repro/internal/testutil"
)

// detConfig is a shorter run than goldenConfig so the three extra
// simulations in this file stay cheap.
func detConfig(seed uint64) sim.Config {
	cfg := goldenConfig()
	cfg.Seed = seed
	cfg.Days = 60
	return cfg
}

// digestBytes runs a config and returns its digest in canonical bytes.
func digestBytes(t *testing.T, cfg sim.Config) []byte {
	t.Helper()
	b, err := testutil.MarshalStable(testutil.DigestResult(sim.New(cfg).Run()))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestSameSeedByteIdentical proves two fresh same-seed runs produce
// byte-identical dataset digests — every account, weekly aggregate,
// window aggregate, ledger entry and detection record, not just totals.
func TestSameSeedByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two simulations")
	}
	a := digestBytes(t, detConfig(99))
	b := digestBytes(t, detConfig(99))
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed produced different datasets:\n%s", testutil.Diff(string(a), string(b)))
	}
}

// TestSameSeedByteIdenticalEventLog extends the same-seed guarantee to
// the event-log subsystem: two same-seed runs write byte-identical logs
// (emission order, varint encoding and string interning are all
// deterministic), and attaching a sink does not perturb the run itself —
// the logged run's dataset digest matches a sink-less run's.
func TestSameSeedByteIdenticalEventLog(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three simulations")
	}
	runLogged := func() ([]byte, []byte) {
		var buf bytes.Buffer
		w := eventlog.NewWriter(&buf)
		cfg := detConfig(99)
		cfg.Events = w
		res := sim.New(cfg).Run()
		if err := w.Err(); err != nil {
			t.Fatalf("event writer failed: %v", err)
		}
		if w.Events() == 0 {
			t.Fatal("no events emitted")
		}
		dig, err := testutil.MarshalStable(testutil.DigestResult(res))
		if err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), dig
	}
	logA, digA := runLogged()
	logB, digB := runLogged()
	if !bytes.Equal(logA, logB) {
		t.Fatalf("same seed produced different event logs (%d vs %d bytes)", len(logA), len(logB))
	}
	if !bytes.Equal(digA, digB) {
		t.Fatalf("same seed produced different datasets:\n%s", testutil.Diff(string(digA), string(digB)))
	}
	plain := digestBytes(t, detConfig(99))
	if !bytes.Equal(digA, plain) {
		t.Fatalf("attaching an event sink perturbed the run:\n%s", testutil.Diff(string(digA), string(plain)))
	}
}

// TestDifferentSeedsDiverge guards against the digest (or the engine)
// degenerating into something seed-independent.
func TestDifferentSeedsDiverge(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two simulations")
	}
	a := testutil.DigestResult(sim.New(detConfig(101)).Run())
	b := testutil.DigestResult(sim.New(detConfig(102)).Run())
	if a.Fingerprint == b.Fingerprint {
		t.Fatalf("different seeds produced identical fingerprints (%s)", a.Fingerprint)
	}
}

// TestDigestStableAcrossGOMAXPROCS pins the digest against the runtime's
// parallelism setting. Config.Workers defaults to GOMAXPROCS, so the
// first two runs resolve to different worker counts (1 versus whatever
// the host has) through the default path — the digest must not notice.
// The third run pins an explicit worker count larger than either, so the
// test is meaningful even on a single-core host. serve_test.go holds the
// full workers × seeds matrix; this is the cheap always-on tripwire.
func TestDigestStableAcrossGOMAXPROCS(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three simulations")
	}
	prev := runtime.GOMAXPROCS(1)
	serial := digestBytes(t, detConfig(7))
	runtime.GOMAXPROCS(prev)
	parallel := digestBytes(t, detConfig(7))
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("digest depends on GOMAXPROCS:\n%s", testutil.Diff(string(serial), string(parallel)))
	}
	cfg := detConfig(7)
	cfg.Workers = 5
	if five := digestBytes(t, cfg); !bytes.Equal(serial, five) {
		t.Fatalf("digest depends on explicit worker count:\n%s", testutil.Diff(string(serial), string(five)))
	}
}
