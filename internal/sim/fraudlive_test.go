package sim

// The progress callback used to rescan the whole live list every
// reporting day to count surviving fraud accounts — O(live) per report.
// Step now reads the maintained fraudLive counter instead; this test
// pins the counter to the scan it replaced at every phase boundary of a
// full run, and across a snapshot/restore round trip (Restore recomputes
// it rather than trusting the snapshot).

import (
	"bytes"
	"encoding/gob"
	"testing"
)

// fraudAliveScan is the replaced O(live) definition: live-list agents
// whose account is fraudulent and still active.
func fraudAliveScan(s *Sim) int {
	n := 0
	for _, a := range s.live {
		if acct := s.p.MustAccount(a.Account); acct.Fraud && acct.Alive() {
			n++
		}
	}
	return n
}

func TestFraudLiveCounterMatchesScan(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full small simulation")
	}
	cfg := SmallConfig()
	cfg.Seed = 3
	cfg.Days = 40
	cfg.QueriesPerDay = 200
	cfg.RegistrationsPerDay = 8
	cfg.InitialLegit = 80
	cfg.Workers = 2
	s := New(cfg)

	checked := 0
	for {
		ok := s.StepPhase()
		if got, want := s.fraudLive, fraudAliveScan(s); got != want {
			t.Fatalf("day %d before %s: fraudLive = %d, scan = %d", s.day, s.phase, got, want)
		}
		checked++
		if !ok {
			break
		}
	}
	if checked < 4*int(cfg.Days) {
		t.Fatalf("checked only %d phase boundaries", checked)
	}
	if s.fraudLive == 0 {
		t.Fatal("no live fraud accounts at the horizon; the pin never exercised the counter")
	}

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var st State
	if err := gob.NewDecoder(&buf).Decode(&st); err != nil {
		t.Fatal(err)
	}
	r, err := Restore(&st)
	if err != nil {
		t.Fatal(err)
	}
	if r.fraudLive != fraudAliveScan(r) {
		t.Fatalf("restored fraudLive = %d, scan = %d", r.fraudLive, fraudAliveScan(r))
	}
	if r.fraudLive != s.fraudLive {
		t.Fatalf("restore changed fraudLive: %d != %d", r.fraudLive, s.fraudLive)
	}
}
