package sim_test

import (
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/testutil"
)

// goldenConfig is the pinned configuration behind the golden fixtures
// under testdata/. Changing ANY of these values invalidates the fixtures;
// regenerate with `make golden` and justify the behavioral change in the
// commit message (see internal/testutil/README.md).
func goldenConfig() sim.Config {
	cfg := sim.SmallConfig()
	cfg.Seed = 7
	cfg.Days = 120
	cfg.QueriesPerDay = 800
	cfg.RegistrationsPerDay = 10
	cfg.InitialLegit = 250
	return cfg
}

// goldenRun memoizes the golden-config simulation for every test in this
// file (sync.Once keeps it safe if tests ever run in parallel).
var goldenRun struct {
	once sync.Once
	res  *sim.Result
}

func goldenResult(t *testing.T) *sim.Result {
	t.Helper()
	goldenRun.once.Do(func() {
		goldenRun.res = sim.New(goldenConfig()).Run()
	})
	return goldenRun.res
}

// TestGoldenDatasetDigest pins the full dataset fingerprint: accounts,
// weekly activity, window aggregates, sample-window click counters,
// billing ledger, and detection records. Any behavioral drift in the
// engine or its substrates shows up here as a hash mismatch.
func TestGoldenDatasetDigest(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	d := testutil.DigestResult(goldenResult(t))
	testutil.GoldenJSON(t, filepath.Join("testdata", "tiny_seed7_digest.golden.json"), d)
}

// TestGoldenHeadlineCounters pins the run's headline counters separately
// from the hashes, so a drifting digest immediately shows which totals
// moved (or that none did, pointing at a record-level change).
func TestGoldenHeadlineCounters(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	c := testutil.CountersOf(goldenResult(t))
	testutil.GoldenJSON(t, filepath.Join("testdata", "tiny_seed7_counters.golden.json"), c)
}

// TestGoldenCompanionInvariants is the companion invariant suite for the
// two goldens above (every golden test must have one): conservation laws
// that hold for ANY valid run, not just the pinned one. If a regenerated
// golden ever violates these, the new behavior is wrong no matter what
// the fixtures say.
func TestGoldenCompanionInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	res := goldenResult(t)
	p := res.Platform

	// Clicks never exceed impressions, globally and per account.
	if res.Clicks > res.Impressions {
		t.Errorf("clicks (%d) exceed impressions (%d)", res.Clicks, res.Impressions)
	}
	if res.FraudClicks > res.Clicks {
		t.Errorf("fraud clicks (%d) exceed clicks (%d)", res.FraudClicks, res.Clicks)
	}

	// Billed spend equals ledger totals equals summed account spend.
	var acctSpend float64
	var acctClicks, acctImpr int64
	for _, a := range p.Accounts() {
		if a.Clicks > a.Impressions {
			t.Errorf("account %d: clicks (%d) exceed impressions (%d)", a.ID, a.Clicks, a.Impressions)
		}
		if ledgerBilled := p.Ledger().Billed(a.ID); !approxEqual(ledgerBilled, a.Spend) {
			t.Errorf("account %d: ledger billed %v != account spend %v", a.ID, ledgerBilled, a.Spend)
		}
		acctSpend += a.Spend
		acctClicks += a.Clicks
		acctImpr += a.Impressions
	}
	if !approxEqual(acctSpend, p.Ledger().TotalBilled()) || !approxEqual(acctSpend, res.Spend) {
		t.Errorf("spend not conserved: accounts=%v ledger=%v result=%v",
			acctSpend, p.Ledger().TotalBilled(), res.Spend)
	}
	if acctClicks != res.Clicks || acctImpr != res.Impressions {
		t.Errorf("click/impression totals not conserved: accounts=%d/%d result=%d/%d",
			acctClicks, acctImpr, res.Clicks, res.Impressions)
	}
	if lost := p.Ledger().TotalLost(); lost > p.Ledger().TotalBilled() || lost != res.RevenueLost {
		t.Errorf("revenue lost inconsistent: lost=%v billed=%v result=%v",
			lost, p.Ledger().TotalBilled(), res.RevenueLost)
	}

	// Every detection record references an account the platform actually
	// terminated, stamped no earlier than the account's creation.
	for _, rec := range res.Collector.Detections() {
		a, err := p.Account(rec.Account)
		if err != nil {
			t.Fatalf("detection record references unknown account %d", rec.Account)
		}
		if a.Status != platform.StatusShutdown && a.Status != platform.StatusRejected {
			t.Errorf("detection record for account %d in state %s", a.ID, a.Status)
		}
		if rec.At < a.Created {
			t.Errorf("account %d detected (%v) before creation (%v)", a.ID, rec.At, a.Created)
		}
	}

	// Weekly activity aggregates reproduce the platform totals.
	var wkImpr, wkClicks int64
	var wkSpend float64
	for _, a := range p.Accounts() {
		agg := res.Collector.Agg(a.ID)
		if agg == nil {
			continue
		}
		for _, w := range agg.Weeks {
			wkImpr += w.Impressions
			wkClicks += w.Clicks
			wkSpend += w.Spend
		}
	}
	if wkImpr != res.Impressions || wkClicks != res.Clicks || !approxEqual(wkSpend, res.Spend) {
		t.Errorf("weekly aggregates (%d/%d/%v) != result totals (%d/%d/%v)",
			wkImpr, wkClicks, wkSpend, res.Impressions, res.Clicks, res.Spend)
	}
}

func approxEqual(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	s := a + b
	if s < 0 {
		s = -s
	}
	return d <= 1e-6*(1+s)
}
