package sim

// Checkpoint lineage. A single checkpoint file is one bad sector away
// from an unrecoverable run: the atomic-rename discipline protects
// against crashes *during* the write, but nothing protects a checkpoint
// that goes bad on disk afterwards (bit rot, truncation, a partial
// fsync on real hardware). A Lineage keeps the last Retain checkpoints
// as a chain anchored at Path:
//
//	Path     the newest checkpoint (same name a single-file setup used)
//	Path.1   the one before it
//	Path.2   the one before that, ... up to Path.(Retain-1)
//
// Save stages the new checkpoint at Path.tmp (fsync'd), shifts the
// chain by one (Path.1 -> Path.2, Path -> Path.1 — each step a single
// rename, so a crash at any point leaves every surviving file a
// complete, valid checkpoint), then renames the staged file into Path
// and fsyncs the directory. Load walks the chain newest to oldest: a
// file that fails validation (CRC, framing, or decode) is quarantined
// by renaming it to <name>.corrupt — evidence is never deleted — and
// the walk falls back to the next-older snapshot. The caller then
// truncates the event log to the restored checkpoint's segment and
// re-simulates the gap; the trajectory is deterministic, so the rerun
// rewrites byte-identical segments and the run converges on the exact
// digest of an uninterrupted one (proven by the corruption sweep in
// crash_lineage_test.go).

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// DefaultRetain is how many checkpoints a lineage keeps when the caller
// does not say otherwise.
const DefaultRetain = 3

// CorruptSuffix marks a quarantined checkpoint that failed validation.
const CorruptSuffix = ".corrupt"

// ErrNoCheckpoint reports that a lineage holds no checkpoint files at
// all — the "fresh start" signal, distinct from a lineage whose files
// all failed validation.
var ErrNoCheckpoint = errors.New("sim: no checkpoint found")

// ErrLineageCorrupt reports that a lineage had checkpoint files but
// every one failed validation; all were quarantined.
var ErrLineageCorrupt = errors.New("sim: every checkpoint in the lineage is corrupt")

// Lineage is a retained chain of checkpoint files anchored at Path.
type Lineage struct {
	// Path is the anchor: the newest checkpoint's file name. Older
	// generations live beside it as Path.1, Path.2, ...
	Path string
	// Retain bounds the chain length (newest included); <= 0 means
	// DefaultRetain.
	Retain int
}

func (l Lineage) retain() int {
	if l.Retain <= 0 {
		return DefaultRetain
	}
	return l.Retain
}

// gen returns the file name of the i-th newest checkpoint (0 = Path).
func (l Lineage) gen(i int) string {
	if i == 0 {
		return l.Path
	}
	return fmt.Sprintf("%s.%d", l.Path, i)
}

// generations returns every checkpoint file currently on disk in
// newest-to-oldest order (by naming convention: lower suffix = newer),
// including files beyond Retain left by an earlier, longer retention.
func (l Lineage) generations() ([]string, error) {
	var out []string
	if _, err := os.Stat(l.Path); err == nil {
		out = append(out, l.Path)
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	matches, err := filepath.Glob(l.Path + ".*")
	if err != nil {
		return nil, err
	}
	var idx []int
	for _, m := range matches {
		n, err := strconv.Atoi(strings.TrimPrefix(m, l.Path+"."))
		if err != nil || n < 1 {
			continue // .tmp, .corrupt, or some unrelated neighbor
		}
		idx = append(idx, n)
	}
	sort.Ints(idx)
	for _, n := range idx {
		out = append(out, l.gen(n))
	}
	return out, nil
}

// LineageReport describes what a Load did besides returning a
// checkpoint: which file it restored from, which files it quarantined,
// and whether a stale staging file was swept.
type LineageReport struct {
	// From is the file the returned checkpoint was read from ("" when
	// no checkpoint was restored).
	From string
	// Quarantined lists files renamed to <name>.corrupt, newest first.
	Quarantined []string
	// SweptTmp is the stale .tmp staging file removed, if any. A crash
	// between staging and rename leaves one behind; it was never
	// committed, so it is deleted (unlike corrupt committed
	// checkpoints, which are quarantined as evidence).
	SweptTmp string
}

// String renders the report's actions for operator logs; empty when
// nothing noteworthy happened beyond a clean restore.
func (r *LineageReport) String() string {
	var parts []string
	if r.SweptTmp != "" {
		parts = append(parts, fmt.Sprintf("swept stale %s", r.SweptTmp))
	}
	for _, q := range r.Quarantined {
		parts = append(parts, fmt.Sprintf("quarantined %s%s", q, CorruptSuffix))
	}
	return strings.Join(parts, "; ")
}

// SweepTmp removes a stale .tmp staging file left by a crash between
// staging and rename. It reports the path removed ("" if none) and is
// called by both Load and Save, so a lineage heals on the first touch.
func (l Lineage) SweepTmp() (string, error) {
	tmp := l.Path + ".tmp"
	if _, err := os.Stat(tmp); err != nil {
		if os.IsNotExist(err) {
			return "", nil
		}
		return "", err
	}
	if err := os.Remove(tmp); err != nil {
		return "", err
	}
	return tmp, nil
}

// Save writes c as the lineage's newest checkpoint: stage, shift the
// chain, commit, prune. A crash at any point leaves every committed
// checkpoint intact (each shift step is a single atomic rename), so the
// worst a crash can cost is the checkpoint being staged.
func (l Lineage) Save(c *Checkpoint) error {
	frame, err := encodeCheckpoint(c)
	if err != nil {
		return err
	}
	tmp := l.Path + ".tmp"
	if err := writeFileSync(tmp, frame); err != nil {
		return err
	}
	// Shift oldest-first so no generation is ever overwritten by a
	// newer one before it has moved out of the way.
	retain := l.retain()
	for i := retain - 1; i >= 1; i-- {
		if err := os.Rename(l.gen(i-1), l.gen(i)); err != nil && !os.IsNotExist(err) {
			os.Remove(tmp)
			return err
		}
	}
	if err := os.Rename(tmp, l.Path); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := syncDir(filepath.Dir(l.Path)); err != nil {
		return err
	}
	// Prune generations beyond the retention (a shrunk Retain, or the
	// one shifted off the end of the chain).
	gens, err := l.generations()
	if err != nil {
		return err
	}
	for _, g := range gens {
		if g == l.Path {
			continue
		}
		n, _ := strconv.Atoi(strings.TrimPrefix(g, l.Path+"."))
		if n >= retain {
			if err := os.Remove(g); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
	}
	return nil
}

// Load restores the newest valid checkpoint in the lineage, sweeping a
// stale staging file and quarantining every newer checkpoint that fails
// validation. It returns ErrNoCheckpoint when the lineage is empty and
// an ErrLineageCorrupt-wrapped error when files existed but none were
// valid; the report is non-nil in every case.
func (l Lineage) Load() (*Checkpoint, *LineageReport, error) {
	rep := &LineageReport{}
	swept, err := l.SweepTmp()
	if err != nil {
		return nil, rep, err
	}
	rep.SweptTmp = swept

	gens, err := l.generations()
	if err != nil {
		return nil, rep, err
	}
	if len(gens) == 0 {
		return nil, rep, ErrNoCheckpoint
	}
	var firstErr error
	for _, g := range gens {
		c, err := ReadCheckpoint(g)
		if err == nil {
			rep.From = g
			return c, rep, nil
		}
		if os.IsNotExist(err) {
			continue // raced away; nothing to quarantine
		}
		if firstErr == nil {
			firstErr = err
		}
		// Quarantine, never delete: the damaged bytes are the only
		// evidence of what went wrong on this disk.
		if qerr := os.Rename(g, g+CorruptSuffix); qerr != nil {
			return nil, rep, fmt.Errorf("sim: quarantine %s: %v (original error: %w)", g, qerr, err)
		}
		rep.Quarantined = append(rep.Quarantined, g)
	}
	return nil, rep, fmt.Errorf("%w (%d quarantined; newest: %v)", ErrLineageCorrupt, len(rep.Quarantined), firstErr)
}

// SaveCheckpointLineage snapshots the sim and saves it as the lineage's
// newest checkpoint — the retained-chain counterpart of
// WriteCheckpointFile.
func (s *Sim) SaveCheckpointLineage(l Lineage, pos LogPosition) error {
	return l.Save(&Checkpoint{State: s.Snapshot(), Log: pos})
}
