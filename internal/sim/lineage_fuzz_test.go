package sim_test

// FuzzLineageLoad materializes a three-generation lineage from fuzzer
// bytes and runs the full restore walk over it. The invariants under
// arbitrary damage: Load never panics, never returns both a checkpoint
// and an error, returns the newest generation that validates, and every
// invalid newer generation ends up quarantined (renamed, never deleted)
// with the byte evidence intact.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sim"
)

func FuzzLineageLoad(f *testing.F) {
	cfg := crashConfig(11)
	cfg.Days = 6
	cfg.QueriesPerDay = 100
	cfg.RegistrationsPerDay = 4
	cfg.InitialLegit = 40
	s := sim.New(cfg)
	for int(s.Day()) < 2 {
		if !s.Step() {
			f.Fatal("horizon ended before checkpoint day")
		}
	}
	dir := f.TempDir()
	seedPath := filepath.Join(dir, "seed.frsnap")
	if err := s.WriteCheckpointFile(seedPath, sim.LogPosition{NextSegment: 1, Events: 9}); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	torn := valid[:len(valid)/2]
	flipped := bytes.Clone(valid)
	flipped[len(flipped)-3] ^= 0x40

	// Seed corpus: clean chain, damaged newest, damaged middle, all bad,
	// empty members, and a stale staging file in the mix.
	f.Add(valid, valid, valid, false)
	f.Add(flipped, valid, valid, false)
	f.Add(valid, torn, valid, true)
	f.Add(flipped, torn, []byte{}, false)
	f.Add([]byte{}, []byte{}, []byte{}, true)
	f.Add([]byte("FRSNAP\x02junk"), flipped, torn, false)

	f.Fuzz(func(t *testing.T, g0, g1, g2 []byte, staleTmp bool) {
		lin := sim.Lineage{Path: filepath.Join(t.TempDir(), "ck.frsnap")}
		gens := []string{lin.Path, lin.Path + ".1", lin.Path + ".2"}
		// Empty fuzz members model a missing generation (a hole in the
		// chain), not an empty file.
		for i, data := range [][]byte{g0, g1, g2} {
			if len(data) == 0 {
				continue
			}
			if err := os.WriteFile(gens[i], data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		if staleTmp {
			if err := os.WriteFile(lin.Path+".tmp", torn, 0o644); err != nil {
				t.Fatal(err)
			}
		}

		c, rep, err := lin.Load()
		if (c != nil) == (err == nil) == false {
			t.Fatalf("Load returned checkpoint=%v err=%v", c != nil, err)
		}
		if staleTmp && rep.SweptTmp == "" {
			t.Fatal("stale tmp not swept")
		}
		if _, serr := os.Stat(lin.Path + ".tmp"); !os.IsNotExist(serr) {
			t.Fatal("tmp file survived Load")
		}
		// The walk stops at the first valid generation: quarantined files
		// must all be newer than the restored one, and each must have its
		// evidence preserved under the .corrupt name.
		for _, q := range rep.Quarantined {
			if _, serr := os.Stat(q + sim.CorruptSuffix); serr != nil {
				t.Fatalf("quarantined %s lost its evidence: %v", q, serr)
			}
			if q == rep.From {
				t.Fatalf("%s both restored-from and quarantined", q)
			}
		}
		if err == nil {
			if rep.From == "" {
				t.Fatal("successful Load with empty From")
			}
			if got, rerr := sim.ReadCheckpoint(rep.From); rerr != nil || got == nil {
				t.Fatalf("restored-from file %s does not validate: %v", rep.From, rerr)
			}
		}
	})
}
