package sim_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sim"
)

// lineageState memoizes one real snapshot — lineage mechanics don't
// care what's inside the checkpoint, only that it validates.
var lineageState *sim.State

// lineageCkpt returns a valid checkpoint whose log position doubles as
// a generation marker, so tests can tell which save a file came from.
func lineageCkpt(t *testing.T, marker int) *sim.Checkpoint {
	t.Helper()
	if lineageState == nil {
		cfg := crashConfig(9)
		cfg.Days = 3
		s := sim.New(cfg)
		if !s.Step() {
			t.Fatal("sim ended before first day boundary")
		}
		lineageState = s.Snapshot()
	}
	return &sim.Checkpoint{State: lineageState, Log: sim.LogPosition{NextSegment: marker, Events: uint64(marker)}}
}

// flipByte damages a committed checkpoint in place (CRC-detectable).
func flipByte(t *testing.T, path string) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-3] ^= 0x40
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

func mustLoad(t *testing.T, l sim.Lineage) (*sim.Checkpoint, *sim.LineageReport) {
	t.Helper()
	c, rep, err := l.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return c, rep
}

// TestLineageSaveShiftPrune: repeated saves shift the chain one slot
// per save, keep exactly Retain generations newest-first, and prune the
// one that falls off the end.
func TestLineageSaveShiftPrune(t *testing.T) {
	l := sim.Lineage{Path: filepath.Join(t.TempDir(), "ck.frsnap"), Retain: 3}
	for i := 1; i <= 5; i++ {
		if err := l.Save(lineageCkpt(t, i)); err != nil {
			t.Fatalf("save %d: %v", i, err)
		}
	}
	// Chain should be markers 5,4,3 at ck, ck.1, ck.2; nothing older.
	for g, want := range map[string]int{l.Path: 5, l.Path + ".1": 4, l.Path + ".2": 3} {
		c, err := sim.ReadCheckpoint(g)
		if err != nil {
			t.Fatalf("read %s: %v", g, err)
		}
		if c.Log.NextSegment != want {
			t.Errorf("%s holds marker %d, want %d", g, c.Log.NextSegment, want)
		}
	}
	for _, stale := range []string{l.Path + ".3", l.Path + ".4", l.Path + ".tmp"} {
		if _, err := os.Stat(stale); !os.IsNotExist(err) {
			t.Errorf("%s should have been pruned", stale)
		}
	}
	c, rep := mustLoad(t, l)
	if c.Log.NextSegment != 5 || rep.From != l.Path {
		t.Errorf("Load: marker %d from %q, want 5 from %q", c.Log.NextSegment, rep.From, l.Path)
	}
}

// TestLineageRetainShrink: saving with a smaller Retain prunes the
// generations the old retention left behind.
func TestLineageRetainShrink(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.frsnap")
	wide := sim.Lineage{Path: path, Retain: 5}
	for i := 1; i <= 5; i++ {
		if err := wide.Save(lineageCkpt(t, i)); err != nil {
			t.Fatal(err)
		}
	}
	narrow := sim.Lineage{Path: path, Retain: 2}
	if err := narrow.Save(lineageCkpt(t, 6)); err != nil {
		t.Fatal(err)
	}
	for _, stale := range []string{path + ".2", path + ".3", path + ".4"} {
		if _, err := os.Stat(stale); !os.IsNotExist(err) {
			t.Errorf("%s survived retention shrink", stale)
		}
	}
	if c, err := sim.ReadCheckpoint(path + ".1"); err != nil || c.Log.NextSegment != 5 {
		t.Errorf("ck.1: %v, marker %v, want 5", err, c)
	}
}

// TestLineageLoadFallbackQuarantine: corrupt newer generations are
// quarantined as .corrupt (never deleted) and Load falls back to the
// newest valid snapshot.
func TestLineageLoadFallbackQuarantine(t *testing.T) {
	l := sim.Lineage{Path: filepath.Join(t.TempDir(), "ck.frsnap")}
	for i := 1; i <= 3; i++ {
		if err := l.Save(lineageCkpt(t, i)); err != nil {
			t.Fatal(err)
		}
	}
	flipByte(t, l.Path)
	flipByte(t, l.Path+".1")

	c, rep := mustLoad(t, l)
	if c.Log.NextSegment != 1 {
		t.Errorf("restored marker %d, want 1 (oldest generation)", c.Log.NextSegment)
	}
	if rep.From != l.Path+".2" {
		t.Errorf("restored from %q, want %q", rep.From, l.Path+".2")
	}
	if len(rep.Quarantined) != 2 || rep.Quarantined[0] != l.Path || rep.Quarantined[1] != l.Path+".1" {
		t.Errorf("quarantined %v, want [%s %s]", rep.Quarantined, l.Path, l.Path+".1")
	}
	// Evidence preserved, originals gone.
	for _, q := range rep.Quarantined {
		if _, err := os.Stat(q + sim.CorruptSuffix); err != nil {
			t.Errorf("quarantine file %s%s missing: %v", q, sim.CorruptSuffix, err)
		}
		if _, err := os.Stat(q); !os.IsNotExist(err) {
			t.Errorf("corrupt original %s still present", q)
		}
	}
	if rep.String() == "" {
		t.Error("report with quarantines renders empty")
	}
}

// TestLineageAllCorruptAndEmpty: a lineage whose every file fails
// validation reports ErrLineageCorrupt (all quarantined); an empty one
// reports ErrNoCheckpoint.
func TestLineageAllCorruptAndEmpty(t *testing.T) {
	l := sim.Lineage{Path: filepath.Join(t.TempDir(), "ck.frsnap"), Retain: 2}
	for i := 1; i <= 2; i++ {
		if err := l.Save(lineageCkpt(t, i)); err != nil {
			t.Fatal(err)
		}
	}
	flipByte(t, l.Path)
	flipByte(t, l.Path+".1")
	_, rep, err := l.Load()
	if !errors.Is(err, sim.ErrLineageCorrupt) {
		t.Fatalf("Load on all-corrupt lineage: %v, want ErrLineageCorrupt", err)
	}
	if len(rep.Quarantined) != 2 {
		t.Errorf("quarantined %v, want both generations", rep.Quarantined)
	}

	empty := sim.Lineage{Path: filepath.Join(t.TempDir(), "none.frsnap")}
	if _, _, err := empty.Load(); !errors.Is(err, sim.ErrNoCheckpoint) {
		t.Fatalf("Load on empty lineage: %v, want ErrNoCheckpoint", err)
	}
}

// TestLineageSweepsStaleTmp pins the stale-tmp fix: a crash between
// staging and rename leaves ck.tmp behind; both Load and Save remove it
// rather than leaking it forever, and Load says so in the report.
func TestLineageSweepsStaleTmp(t *testing.T) {
	l := sim.Lineage{Path: filepath.Join(t.TempDir(), "ck.frsnap")}
	if err := l.Save(lineageCkpt(t, 1)); err != nil {
		t.Fatal(err)
	}
	stale := l.Path + ".tmp"
	if err := os.WriteFile(stale, []byte("half a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, rep := mustLoad(t, l)
	if rep.SweptTmp != stale {
		t.Errorf("SweptTmp = %q, want %q", rep.SweptTmp, stale)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Errorf("stale tmp %s survived Load", stale)
	}
	if c.Log.NextSegment != 1 {
		t.Errorf("restore after sweep got marker %d, want 1", c.Log.NextSegment)
	}

	// Save also heals: it must not trip over (or commit) a stale tmp.
	if err := os.WriteFile(stale, []byte("half a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := l.Save(lineageCkpt(t, 2)); err != nil {
		t.Fatalf("Save over stale tmp: %v", err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Errorf("stale tmp %s survived Save", stale)
	}
	if c, _ := mustLoad(t, l); c.Log.NextSegment != 2 {
		t.Errorf("marker %d after Save over stale tmp, want 2", c.Log.NextSegment)
	}
}

// TestLineageIgnoresNeighbors: .corrupt quarantine files and unrelated
// suffixes are not mistaken for generations.
func TestLineageIgnoresNeighbors(t *testing.T) {
	l := sim.Lineage{Path: filepath.Join(t.TempDir(), "ck.frsnap")}
	if err := l.Save(lineageCkpt(t, 7)); err != nil {
		t.Fatal(err)
	}
	for _, junk := range []string{l.Path + sim.CorruptSuffix, l.Path + ".1" + sim.CorruptSuffix, l.Path + ".bak"} {
		if err := os.WriteFile(junk, []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	c, rep := mustLoad(t, l)
	if c.Log.NextSegment != 7 || len(rep.Quarantined) != 0 {
		t.Errorf("neighbors leaked into lineage: marker %d, quarantined %v", c.Log.NextSegment, rep.Quarantined)
	}
	// And further saves must not shift junk around.
	if err := l.Save(lineageCkpt(t, 8)); err != nil {
		t.Fatal(err)
	}
	for _, junk := range []string{l.Path + sim.CorruptSuffix, l.Path + ".bak"} {
		if _, err := os.Stat(junk); err != nil {
			t.Errorf("neighbor %s disturbed by Save: %v", junk, err)
		}
	}
}

// TestLineageDefaultRetain: Retain <= 0 means DefaultRetain.
func TestLineageDefaultRetain(t *testing.T) {
	l := sim.Lineage{Path: filepath.Join(t.TempDir(), "ck.frsnap")}
	for i := 1; i <= sim.DefaultRetain+2; i++ {
		if err := l.Save(lineageCkpt(t, i)); err != nil {
			t.Fatal(err)
		}
	}
	var kept int
	for i := 0; i < sim.DefaultRetain+2; i++ {
		name := l.Path
		if i > 0 {
			name = fmt.Sprintf("%s.%d", l.Path, i)
		}
		if _, err := os.Stat(name); err == nil {
			kept++
		}
	}
	if kept != sim.DefaultRetain {
		t.Errorf("kept %d generations, want DefaultRetain=%d", kept, sim.DefaultRetain)
	}
}
