package sim

// The serving engine: the day's query → auction → click → billing loop,
// runnable either on the simulation goroutine (Workers <= 1) or sharded
// across a worker pool (Workers > 1) with byte-identical outcomes.
//
// The determinism contract (DESIGN.md "Parallel serving") rests on three
// facts about stepDay: campaign and account state is frozen while
// serving runs (arrivals, agent steps and detection all happen outside
// the serving phase), the query stream and the click stream are each one
// sequential RNG, and every order-sensitive accumulation is either a
// commutative integer count or a float sum applied at the day barrier in
// global query order. Concretely the sharded path runs five sub-phases
// per day:
//
//	A. generate the day's queries sequentially (one RNG stream);
//	B. shard the query indices into contiguous blocks, one per worker;
//	   each worker resolves eligibility + auction for its block against
//	   the frozen index — through a per-worker, epoch-invalidated page
//	   cache — and records each query's click-RNG draw count;
//	C. derive each query's click-RNG substream sequentially from the
//	   master click stream (stats.SubStreams), advancing the master
//	   exactly as sequential serving would;
//	D. workers roll clicks for their queries from the private substreams
//	   and stage outcomes: commutative counters in a
//	   dataset.ShardAccumulator, clicks as ordered ClickRows, events in
//	   a per-worker buffer;
//	E. at the day barrier, the simulation goroutine folds every shard in
//	   shard order — which, because blocks are contiguous, is global
//	   query order: counter merges, then billing + spend + click folds
//	   row by row, then event flush.
//
// Workers <= 1 uses a fused single-pass loop (the pre-sharding engine)
// over the same page cache, so the sequential path keeps its speed and
// the parallel path provably matches it byte for byte (see the digest
// matrix in serve_test.go).

import (
	"fmt"
	"sync"

	"repro/internal/auction"
	"repro/internal/dataset"
	"repro/internal/eventlog"
	"repro/internal/market"
	"repro/internal/platform"
	"repro/internal/queries"
	"repro/internal/simclock"
	"repro/internal/stats"
	"repro/internal/verticals"
)

// pageKey identifies a query equivalence class: two queries with the same
// key see the same eligible bids and auction outcome while the index
// epoch is unchanged.
type pageKey struct {
	vi      int32
	kw      int32
	cl      int32
	form    platform.QueryForm
	country market.Country
}

// page is one cached auction outcome: the placements, each placement's
// click probability, its ad's vertical index, the owning account (the
// fraud-presence loops read the flag straight off the pointer), and how
// many click-RNG draws rolling the page consumes (one per probability
// strictly inside (0,1) — exactly what clicks.Model.SimulateInto would
// draw).
type page struct {
	placements []auction.Placement
	cps        []float64
	vis        []int32
	accts      []*platform.Account
	draws      int32
}

// pagePool recycles page structs and their backing slices across epochs:
// pages live exactly as long as the cache that holds them, so when the
// cache is invalidated the pool rewinds and the next day's misses reuse
// the same storage instead of reallocating four slices per page.
type pagePool struct {
	chunks [][]page
	used   int
}

const pageChunk = 512

func (pp *pagePool) get() *page {
	ci, pi := pp.used/pageChunk, pp.used%pageChunk
	if ci == len(pp.chunks) {
		pp.chunks = append(pp.chunks, make([]page, pageChunk))
	}
	pp.used++
	pg := &pp.chunks[ci][pi]
	pg.placements = pg.placements[:0]
	pg.cps = pg.cps[:0]
	pg.vis = pg.vis[:0]
	pg.accts = pg.accts[:0]
	pg.draws = 0
	return pg
}

// reset rewinds the pool; only safe when every page handed out is dead
// (i.e. together with clearing the page cache).
func (pp *pagePool) reset() { pp.used = 0 }

// maxPageEntries bounds one shard's cache; past it, pages are still
// computed but no longer retained. A full-scale day has ~15k distinct
// pages, so the bound only guards pathological configurations.
const maxPageEntries = 1 << 15

// servePage is one query's resolved page plus the day-dependent fraud
// count, which is never cached: compromises flip account fraud flags
// without touching the index, so fraud presence is recomputed live.
type servePage struct {
	pg         *page
	fraudShown int32
}

// subEntry is one resolved (vertical, country) → posting-list handle in
// a shard's sublist cache.
type subEntry struct {
	country market.Country
	sl      platform.Sublists
}

// shard is one worker's private serving state.
type shard struct {
	// Page cache, valid for one index epoch.
	cache    map[pageKey]*page
	epoch    uint64
	hasEpoch bool
	pool     pagePool

	// Sublist cache, also epoch-scoped: the index's composite (vertical,
	// country) map key hashes two strings, so each shard resolves it once
	// per pair per epoch instead of once per query. Outer slice indexed
	// by vertical index; inner lists hold a handful of countries.
	subs [][]subEntry

	// Scratch reused across queries.
	eligBuf  []platform.BidRef
	scr      auction.Scratch
	clickBuf []int

	// Per-day staging, folded at the day barrier.
	acc    dataset.ShardAccumulator
	clicks []dataset.ClickRow
	events []eventlog.Event
	pages  []servePage
}

// serveEngine owns the worker shards and the per-day query/substream
// tables.
type serveEngine struct {
	workers int
	shards  []*shard

	queries []queries.Query
	draws   []int32
	states  []stats.RNGState
}

func newServeEngine(workers int) *serveEngine {
	e := &serveEngine{workers: workers, shards: make([]*shard, workers)}
	for i := range e.shards {
		e.shards[i] = &shard{}
	}
	return e
}

// bounds returns worker k's contiguous query-index block [lo, hi).
func (e *serveEngine) bounds(k, n int) (int, int) {
	return k * n / e.workers, (k + 1) * n / e.workers
}

// ensureEpoch drops every cached page (and rewinds the page pool and
// sublist cache) when the index has mutated since the cache was filled,
// or on first use.
func (sh *shard) ensureEpoch(epoch uint64) {
	if sh.cache == nil {
		sh.cache = make(map[pageKey]*page, 1024)
	}
	if sh.subs == nil {
		sh.subs = make([][]subEntry, len(verticals.All()))
	}
	if !sh.hasEpoch || sh.epoch != epoch {
		clear(sh.cache)
		sh.pool.reset()
		for i := range sh.subs {
			sh.subs[i] = sh.subs[i][:0]
		}
		sh.epoch = epoch
		sh.hasEpoch = true
	}
}

// sublists resolves the query's (vertical, country) posting-list handle
// through the shard's epoch-scoped cache.
func (sh *shard) sublists(s *Sim, q *queries.Query) platform.Sublists {
	row := sh.subs[q.VerticalIdx]
	for i := range row {
		if row[i].country == q.Country {
			return row[i].sl
		}
	}
	sl := s.p.Index().Sublists(q.Vertical, q.Country)
	sh.subs[q.VerticalIdx] = append(row, subEntry{q.Country, sl})
	return sl
}

// page resolves a query's eligibility and auction through the cache.
// Hot Zipf-head queries repeat heavily within a day while the index is
// frozen, so the hit path skips both the posting-list walk and the
// auction. Empty outcomes are cached too. live is the day's stamped
// account-liveness bitmap (platform.LiveSet).
func (sh *shard) page(s *Sim, q *queries.Query, live []bool) *page {
	key := pageKey{int32(q.VerticalIdx), int32(q.KeywordID), int32(q.Cluster), q.Form, q.Country}
	if pg, ok := sh.cache[key]; ok {
		return pg
	}
	pg := sh.pool.get()
	sh.eligBuf = sh.sublists(s, q).EligibleAppendLive(sh.eligBuf[:0], q.KeywordID, q.Cluster, q.Form, live)
	if len(sh.eligBuf) > 0 {
		res := auction.RunInto(s.cfg.Auction, sh.eligBuf, q.Form, &sh.scr)
		if len(res.Placements) > 0 {
			pg.placements = append(pg.placements, res.Placements...)
			for i := range pg.placements {
				pl := &pg.placements[i]
				cp := s.model.ClickProbability(*pl)
				pg.cps = append(pg.cps, cp)
				pg.vis = append(pg.vis, int32(verticals.Index(pl.Ref.Ad.Vertical)))
				pg.accts = append(pg.accts, s.p.MustAccount(pl.Ref.Ad.Account))
				if cp > 0 && cp < 1 {
					pg.draws++
				}
			}
		}
	}
	if len(sh.cache) < maxPageEntries {
		sh.cache[key] = pg
	}
	return pg
}

// rollClicksInto mirrors clicks.Model.SimulateInto over precomputed
// click probabilities: same draw pattern, same outcomes, no recompute.
func rollClicksInto(rng *stats.RNG, cps []float64, buf []int) []int {
	buf = buf[:0]
	for i, cp := range cps {
		if rng.Bool(cp) {
			buf = append(buf, i)
		}
	}
	return buf
}

// serveQueries runs the day's query volume through the auction and click
// model, on one goroutine or the worker pool per the Workers setting.
func (s *Sim) serveQueries(day simclock.Day) {
	if s.eng == nil {
		s.eng = newServeEngine(s.resolveWorkers())
	}
	if s.shardSinks != nil && len(s.shardSinks) != s.eng.workers {
		panic(fmt.Sprintf("sim: %d shard event sinks for %d workers", len(s.shardSinks), s.eng.workers))
	}
	if s.eng.workers > 1 {
		s.serveQueriesSharded(day)
	} else {
		s.serveQueriesSequential(day)
	}
	s.res.RevenueLost = s.p.Ledger().TotalLost()
}

// serveQueriesSequential is the fused single-goroutine loop: one pass
// per query doing auction (via the page cache), click rolls off the
// master click stream, and immediate folds. Events are staged in the
// shard buffer and flushed in one batch at the end of the phase — the
// order the sink sees is unchanged.
func (s *Sim) serveQueriesSequential(day simclock.Day) {
	sh := s.eng.shards[0]
	sh.ensureEpoch(s.p.Index().Epoch())
	sink := s.events
	if s.shardSinks != nil {
		sink = s.shardSinks[0]
	}
	sh.events = sh.events[:0]
	live := s.p.LiveSet()
	for i := 0; i < s.cfg.QueriesPerDay; i++ {
		q := s.qgen.Next()
		pg := sh.page(s, &q, live)
		if len(pg.placements) == 0 {
			continue
		}
		s.res.Auctions++

		// Ground-truth fraud presence per page: an ad competes with fraud
		// when another shown ad belongs to a fraudulent account. Never
		// cached — fraud flags flip without an index mutation.
		fraudShown := 0
		for _, a := range pg.accts {
			if a.Fraud {
				fraudShown++
			}
		}

		sh.clickBuf = rollClicksInto(s.clickRNG, pg.cps, sh.clickBuf)
		clicked := sh.clickBuf
		country := string(q.Country)
		ci := 0
		for pi := range pg.placements {
			pl := &pg.placements[pi]
			acct := pg.accts[pi]
			isFraud := acct.Fraud
			fraudComp := fraudShown > 0
			if isFraud {
				fraudComp = fraudShown > 1
			}
			wasClicked := ci < len(clicked) && clicked[ci] == pi
			price := 0.0
			if wasClicked {
				ci++
				price = pl.Price
				s.p.Bill(acct.ID, price)
				s.res.Clicks++
				s.res.Spend += price
				if isFraud {
					s.res.FraudClicks++
					s.res.FraudSpend += price
				}
			}
			s.p.CountImpression(acct.ID)
			s.res.Impressions++
			s.col.Impression(day, acct.ID, isFraud, int(pg.vis[pi]),
				q.Country, pl.Position, pl.Ref.Bid.Match, fraudComp, wasClicked, price)
			if sink != nil {
				var flags uint8
				if isFraud {
					flags |= eventlog.FlagFraud
				}
				if fraudComp {
					flags |= eventlog.FlagFraudComp
				}
				if wasClicked {
					flags |= eventlog.FlagClicked
				}
				sh.events = append(sh.events, eventlog.Event{
					Type:     eventlog.TypeImpression,
					Day:      int32(day),
					Account:  int32(acct.ID),
					Vertical: pg.vis[pi],
					Country:  country,
					Position: int32(pl.Position),
					Match:    uint8(pl.Ref.Bid.Match),
					Flags:    flags,
					Amount:   price,
				})
			}
		}
	}
	if sink != nil {
		eventlog.AppendAll(sink, sh.events)
	}
}

// serveQueriesSharded is the worker-pool engine; see the package comment
// for the A–E phase structure and why each phase preserves byte
// identity.
func (s *Sim) serveQueriesSharded(day simclock.Day) {
	e := s.eng
	n := s.cfg.QueriesPerDay

	// Phase A: the query stream is one sequential RNG; draw it up front.
	if cap(e.queries) < n {
		e.queries = make([]queries.Query, n)
		e.draws = make([]int32, n)
	}
	e.queries = e.queries[:n]
	e.draws = e.draws[:n]
	for i := 0; i < n; i++ {
		e.queries[i] = s.qgen.Next()
	}

	epoch := s.p.Index().Epoch()
	nWin := s.col.ActiveWindowCount(day)
	// Stamp the liveness bitmap on the simulation goroutine before the
	// fan-out; workers read it concurrently but never write.
	live := s.p.LiveSet()

	// Phase B: eligibility + auctions against the frozen index.
	var wg sync.WaitGroup
	for k := 0; k < e.workers; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			s.shardAuctions(day, k, n, nWin, epoch, live)
		}(k)
	}
	wg.Wait()

	// Phase C: partition the master click stream by per-query draw
	// count. After this the master has advanced exactly as sequential
	// serving would have.
	e.states = stats.SubStreams(s.clickRNG, e.draws, e.states[:0])

	// Phase D: click rolls and outcome staging from private substreams.
	// Staging is per shard: a worker whose events would flush into a nil
	// sink (a cluster replica that owns a different shard) skips the
	// event buffer entirely — the rolls and folds are unaffected.
	for k := 0; k < e.workers; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			s.shardClicks(day, k, n, s.shardSinkFor(k) != nil)
		}(k)
	}
	wg.Wait()

	// Phase E: deterministic fold, shard by shard — global query order.
	for k := 0; k < e.workers; k++ {
		sh := e.shards[k]
		s.res.Auctions += sh.acc.Auctions
		s.res.Impressions += sh.acc.Impressions
		s.col.MergeShard(day, &sh.acc)
		sh.acc.AccountImpressions(s.p.CountImpressions)
		for i := range sh.clicks {
			row := &sh.clicks[i]
			s.p.Bill(row.Account, row.Price)
			s.res.Clicks++
			s.res.Spend += row.Price
			if row.Fraud {
				s.res.FraudClicks++
				s.res.FraudSpend += row.Price
			}
			s.col.ApplyClick(day, *row)
		}
		if sink := s.shardSinkFor(k); sink != nil {
			eventlog.AppendAll(sink, sh.events)
		}
	}
}

// shardSinkFor returns the sink worker k's serving events flush into at
// the day barrier: its per-shard sink when sharded routing is active
// (possibly nil — a cluster replica discarding shards it does not own),
// the main sink otherwise.
func (s *Sim) shardSinkFor(k int) eventlog.Sink {
	if s.shardSinks != nil {
		return s.shardSinks[k]
	}
	return s.events
}

// shardAuctions is phase B for one worker: resolve every query in the
// block through the page cache and record its draw count. All writes are
// shard-private or to this block's slice of e.draws.
func (s *Sim) shardAuctions(day simclock.Day, k, n, nWin int, epoch uint64, live []bool) {
	e := s.eng
	sh := e.shards[k]
	lo, hi := e.bounds(k, n)
	sh.ensureEpoch(epoch)
	sh.acc.BeginDay(nWin)
	sh.clicks = sh.clicks[:0]
	sh.events = sh.events[:0]
	sh.pages = sh.pages[:0]
	for gi := lo; gi < hi; gi++ {
		pg := sh.page(s, &e.queries[gi], live)
		sp := servePage{pg: pg}
		if len(pg.placements) > 0 {
			sh.acc.Auctions++
			for _, a := range pg.accts {
				if a.Fraud {
					sp.fraudShown++
				}
			}
		}
		e.draws[gi] = pg.draws
		sh.pages = append(sh.pages, sp)
	}
}

// shardClicks is phase D for one worker: roll clicks for each query from
// its private substream (bit-identical to the sequential rolls) and
// stage counter increments, click rows and events.
func (s *Sim) shardClicks(day simclock.Day, k, n int, stage bool) {
	e := s.eng
	sh := e.shards[k]
	lo, hi := e.bounds(k, n)
	var rng stats.RNG
	for gi := lo; gi < hi; gi++ {
		sp := &sh.pages[gi-lo]
		pg := sp.pg
		if len(pg.placements) == 0 {
			continue
		}
		q := &e.queries[gi]
		rng.SetState(e.states[gi])
		country := string(q.Country)
		for pi := range pg.placements {
			pl := &pg.placements[pi]
			clicked := rng.Bool(pg.cps[pi])
			acctID := pl.Ref.Ad.Account
			isFraud := pg.accts[pi].Fraud
			fraudComp := sp.fraudShown > 0
			if isFraud {
				fraudComp = sp.fraudShown > 1
			}
			sh.acc.AddImpression(acctID, pl.Position, fraudComp)
			price := 0.0
			if clicked {
				price = pl.Price
				sh.clicks = append(sh.clicks, dataset.ClickRow{
					Account:   acctID,
					Vertical:  pg.vis[pi],
					Match:     pl.Ref.Bid.Match,
					Country:   q.Country,
					Fraud:     isFraud,
					FraudComp: fraudComp,
					Price:     price,
				})
			}
			if stage {
				var flags uint8
				if isFraud {
					flags |= eventlog.FlagFraud
				}
				if fraudComp {
					flags |= eventlog.FlagFraudComp
				}
				if clicked {
					flags |= eventlog.FlagClicked
				}
				sh.events = append(sh.events, eventlog.Event{
					Type:     eventlog.TypeImpression,
					Day:      int32(day),
					Account:  int32(acctID),
					Vertical: pg.vis[pi],
					Country:  country,
					Position: int32(pl.Position),
					Match:    uint8(pl.Ref.Bid.Match),
					Flags:    flags,
					Amount:   price,
				})
			}
		}
	}
}
