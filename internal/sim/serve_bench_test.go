package sim

// Serving-loop benchmark harness. BenchmarkServeDay times serveQueries —
// the phase the Workers pool parallelizes — against a warmed MediumConfig
// world, per worker count. Each iteration bumps the index epoch first, so
// every measured day pays the realistic cold-cache start a live day pays
// (agent campaign edits invalidate the page cache daily).
//
// TestWriteServingBenchJSON is the `make bench-serving` entry point: it
// measures sequential versus Workers=GOMAXPROCS throughput and writes
// BENCH_serving.json at the repo root. The report records GOMAXPROCS —
// on a single-CPU host the parallel numbers are necessarily ~1×, and the
// file says so rather than pretending otherwise.

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/simclock"
)

var benchServingOut = flag.String("bench-serving-out", "",
	"write the serving benchmark report JSON to this file (see make bench-serving)")

// warmServingState runs cfg to warmDays and returns the gob-encoded
// snapshot plus the next day to serve: every measurement restores from
// the same frozen world, so worker counts compete on identical state.
func warmServingState(tb testing.TB, cfg Config, warmDays int) ([]byte, simclock.Day) {
	tb.Helper()
	s := New(cfg)
	for int(s.day) < warmDays {
		if !s.Step() {
			tb.Fatal("horizon ended during benchmark warmup")
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s.Snapshot()); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes(), s.day
}

func restoreServing(tb testing.TB, state []byte, workers int) *Sim {
	tb.Helper()
	var st State
	if err := gob.NewDecoder(bytes.NewReader(state)).Decode(&st); err != nil {
		tb.Fatal(err)
	}
	s, err := Restore(&st)
	if err != nil {
		tb.Fatal(err)
	}
	s.SetWorkers(workers)
	return s
}

// mediumBenchState memoizes the MediumConfig warmup shared by
// BenchmarkServeDay and TestWriteServingBenchJSON.
var mediumBenchState struct {
	once  sync.Once
	state []byte
	day   simclock.Day
	cfg   Config
}

func mediumServingState(tb testing.TB) ([]byte, simclock.Day, Config) {
	mediumBenchState.once.Do(func() {
		cfg := MediumConfig()
		cfg.Days = 60
		mediumBenchState.cfg = cfg
		mediumBenchState.state, mediumBenchState.day = warmServingState(tb, cfg, 45)
	})
	return mediumBenchState.state, mediumBenchState.day, mediumBenchState.cfg
}

// BenchmarkServeDay times one day of query serving (cold page cache, as
// in a live run) per worker count. The interesting comparison is
// workers=4 versus workers=1 on a multi-core host; queries/s and
// ns/query are reported alongside time/op.
func BenchmarkServeDay(b *testing.B) {
	state, day, cfg := mediumServingState(b)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			s := restoreServing(b, state, workers)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.p.Index().BumpEpoch() // a live day starts cache-cold
				s.serveQueries(day)
			}
			b.StopTimer()
			served := float64(b.N) * float64(cfg.QueriesPerDay)
			b.ReportMetric(served/b.Elapsed().Seconds(), "queries/s")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/served, "ns/query")
		})
	}
}

// ServingBenchMode is one measured worker configuration.
type ServingBenchMode struct {
	Workers       int     `json:"workers"`
	MeasuredDays  int     `json:"measured_days"`
	QueriesPerSec float64 `json:"queries_per_sec"`
	NsPerQuery    float64 `json:"ns_per_query"`
	// AllocsPerDay counts heap allocations per served day (process-wide
	// Mallocs delta bracketing the measured loop, so worker-goroutine
	// allocations are included).
	AllocsPerDay float64 `json:"allocs_per_day"`
}

// ServingBenchReport is the BENCH_serving.json schema.
type ServingBenchReport struct {
	Bench         string             `json:"bench"`
	Config        string             `json:"config"`
	QueriesPerDay int                `json:"queries_per_day"`
	GOMAXPROCS    int                `json:"gomaxprocs"`
	GoVersion     string             `json:"go_version"`
	Timestamp     string             `json:"timestamp"`
	Modes         []ServingBenchMode `json:"modes"`
	Note          string             `json:"note"`
}

// measureServing times `days` cold-cache serving days at the given
// worker count against a restored copy of the warmed state.
func measureServing(tb testing.TB, state []byte, day simclock.Day, qpd, workers, days int) ServingBenchMode {
	tb.Helper()
	s := restoreServing(tb, state, workers)
	s.p.Index().BumpEpoch()
	s.serveQueries(day) // untimed shakedown: page allocations, buffer growth
	m0 := mallocs()     // two MemStats reads bracket the loop, outside the timing
	start := time.Now()
	for i := 0; i < days; i++ {
		s.p.Index().BumpEpoch()
		s.serveQueries(day)
	}
	elapsed := time.Since(start)
	allocs := mallocs() - m0
	served := float64(days) * float64(qpd)
	return ServingBenchMode{
		Workers:       workers,
		MeasuredDays:  days,
		QueriesPerSec: served / elapsed.Seconds(),
		NsPerQuery:    float64(elapsed.Nanoseconds()) / served,
		AllocsPerDay:  float64(allocs) / float64(days),
	}
}

// servingBenchReport measures sequential versus pooled serving over the
// given warmed state and assembles the report.
func servingBenchReport(tb testing.TB, state []byte, day simclock.Day, cfgName string, qpd, days int) ServingBenchReport {
	pooled := runtime.GOMAXPROCS(0)
	modes := []ServingBenchMode{measureServing(tb, state, day, qpd, 1, days)}
	if pooled > 1 {
		modes = append(modes, measureServing(tb, state, day, qpd, pooled, days))
	} else {
		// One CPU: the pool cannot beat sequential, but still measure the
		// sharded engine's overhead at a multi-worker setting.
		modes = append(modes, measureServing(tb, state, day, qpd, 4, days))
	}
	note := "queries/sec for one day of serving, cold page cache per day; " +
		"sequential (workers=1) vs pooled (workers=GOMAXPROCS)"
	if pooled == 1 {
		note += "; HOST HAS 1 CPU: pooled mode runs 4 workers time-sliced on one core, " +
			"so the parallel speedup is not observable here — rerun on a multi-core host"
	}
	return ServingBenchReport{
		Bench:         "serving",
		Config:        cfgName,
		QueriesPerDay: qpd,
		GOMAXPROCS:    pooled,
		GoVersion:     runtime.Version(),
		Timestamp:     time.Now().UTC().Format(time.RFC3339),
		Modes:         modes,
		Note:          note,
	}
}

// TestWriteServingBenchJSON is driven by `make bench-serving`: with
// -bench-serving-out it measures MediumConfig serving throughput and
// writes the JSON report; without the flag it skips.
func TestWriteServingBenchJSON(t *testing.T) {
	if *benchServingOut == "" {
		t.Skip("pass -bench-serving-out (or run `make bench-serving`)")
	}
	state, day, cfg := mediumServingState(t)
	rep := servingBenchReport(t, state, day, "MediumConfig", cfg.QueriesPerDay, 6)
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*benchServingOut, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s:\n%s", *benchServingOut, b)
}

// TestServingBenchReportSmoke keeps the harness itself under test on
// every `go test` run: a tiny config flows through warmup, measurement
// and serialization, and the report is structurally sound.
func TestServingBenchReportSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a small simulation")
	}
	cfg := SmallConfig()
	cfg.Days = 30
	cfg.QueriesPerDay = 300
	cfg.InitialLegit = 120
	state, day := warmServingState(t, cfg, 20)
	rep := servingBenchReport(t, state, day, "smoke", cfg.QueriesPerDay, 2)
	if len(rep.Modes) != 2 || rep.Modes[0].Workers != 1 {
		t.Fatalf("unexpected modes: %+v", rep.Modes)
	}
	for _, m := range rep.Modes {
		if m.QueriesPerSec <= 0 || m.NsPerQuery <= 0 {
			t.Fatalf("degenerate measurement: %+v", m)
		}
		if m.AllocsPerDay <= 0 {
			t.Fatalf("allocation bracket measured nothing: %+v", m)
		}
	}
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back ServingBenchReport
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.GOMAXPROCS != runtime.GOMAXPROCS(0) || back.Bench != "serving" {
		t.Fatalf("report round trip: %+v", back)
	}
}
