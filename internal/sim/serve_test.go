// Parallel-serving suite: serve.go's contract is that Workers is a pure
// throughput knob — every seeded outcome (dataset digests, billing,
// event records, RNG stream positions) is byte-identical across worker
// counts. These tests prove it three ways: a digest matrix across
// workers × seeds, mid-run snapshot byte-equality plus checkpoint/resume
// across a worker-count change, and record-for-record reconstruction of
// the sequential event log from per-shard logs. CI runs the matrix under
// -race, which also makes it the data-race proof for the phase structure.
package sim_test

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"testing"

	"repro/internal/dataset"
	"repro/internal/eventlog"
	"repro/internal/sim"
	"repro/internal/testutil"
)

// matrixConfig spans the Y1Q2 window start (day 90) so the sharded
// window folds and position histograms see real coverage — detConfig's
// 60 days would leave the window lanes untested.
func matrixConfig(seed uint64, workers int) sim.Config {
	cfg := goldenConfig()
	cfg.Seed = seed
	cfg.Days = 110
	cfg.QueriesPerDay = 600
	cfg.Workers = workers
	return cfg
}

// TestParallelServingDigestMatrix is the acceptance matrix: for each
// seed, Workers ∈ {2, 4, 7} must produce dataset digests byte-identical
// to the sequential engine (Workers = 1) — not just totals, but every
// account aggregate, float spend sum, ledger entry and detection record.
// Worker counts that do not divide the query volume exercise the uneven
// shard-boundary arithmetic.
func TestParallelServingDigestMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a grid of simulations")
	}
	for _, seed := range []uint64{7, 31} {
		seq := digestBytes(t, matrixConfig(seed, 1))
		for _, workers := range []int{2, 4, 7} {
			t.Run(fmt.Sprintf("seed=%d/workers=%d", seed, workers), func(t *testing.T) {
				got := digestBytes(t, matrixConfig(seed, workers))
				if !bytes.Equal(seq, got) {
					t.Fatalf("workers=%d diverged from sequential engine:\n%s",
						workers, testutil.Diff(string(seq), string(got)))
				}
			})
		}
	}
}

// TestParallelCheckpointResume proves worker count is orthogonal to the
// checkpoint trajectory: a parallel run and a sequential run snapshot
// byte-identically mid-window, and a run resumed from the parallel
// snapshot with yet another worker count finishes on the same digest as
// both uninterrupted runs.
func TestParallelCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several partial simulations")
	}
	const snapDay = 100 // inside Y1Q2, so window lanes are mid-accumulation

	stepTo := func(s *sim.Sim, day int) {
		t.Helper()
		for int(s.Day()) < day {
			if !s.Step() {
				t.Fatal("horizon ended before snapshot day")
			}
		}
	}
	encode := func(s *sim.Sim) []byte {
		t.Helper()
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(s.Snapshot()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	par := sim.New(matrixConfig(13, 3))
	seq := sim.New(matrixConfig(13, 1))
	stepTo(par, snapDay)
	stepTo(seq, snapDay)

	// Workers is the one config field allowed to differ; normalize it and
	// the remaining state must be byte-identical — platform tables, RNG
	// stream positions, collector aggregates, everything.
	par.SetWorkers(0)
	seq.SetWorkers(0)
	parBytes, seqBytes := encode(par), encode(seq)
	if !bytes.Equal(parBytes, seqBytes) {
		t.Fatalf("mid-run snapshots differ between parallel and sequential runs (%d vs %d bytes)",
			len(parBytes), len(seqBytes))
	}

	finish := func(s *sim.Sim) []byte {
		t.Helper()
		for s.Step() {
		}
		b, err := testutil.MarshalStable(testutil.DigestResult(s.Finish()))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	// Resume from the parallel snapshot with a third worker count.
	var st sim.State
	if err := gob.NewDecoder(bytes.NewReader(parBytes)).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resumed, err := sim.Restore(&st)
	if err != nil {
		t.Fatal(err)
	}
	resumed.SetWorkers(5)

	want := digestBytes(t, matrixConfig(13, 3))
	if got := finish(resumed); !bytes.Equal(want, got) {
		t.Fatalf("resume with different worker count diverged:\n%s",
			testutil.Diff(string(want), string(got)))
	}
	if got := finish(seq); !bytes.Equal(want, got) {
		t.Fatalf("sequential continuation diverged from parallel run:\n%s",
			testutil.Diff(string(want), string(got)))
	}
}

// TestPerShardEventLogReplay proves the sharded event-log contract end
// to end: with SetShardEventSinks, shard k's sink receives exactly shard
// k's impressions in query order, each shard log survives a codec
// round-trip independently, and the control log plus the shard logs —
// merged per day, shards in order — reproduce the sequential engine's
// single log and replay (via dataset.Replayer) to the live collector's
// digests.
func TestPerShardEventLogReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two logged simulations")
	}
	const workers = 3
	cfg := matrixConfig(7, workers)

	var control eventlog.SliceSink
	cfg.Events = &control
	shardSinks := make([]eventlog.SliceSink, workers)
	sinks := make([]eventlog.Sink, workers)
	for i := range shardSinks {
		sinks[i] = &shardSinks[i]
	}
	s := sim.New(cfg)
	s.SetShardEventSinks(sinks)
	res := s.Run()
	live := testutil.CollectorDigests(res.Collector)

	// The sequential single-log reference run.
	seqCfg := matrixConfig(7, 1)
	var single eventlog.SliceSink
	seqCfg.Events = &single
	sim.New(seqCfg).Run()

	// Every shard log must survive the binary codec on its own: each has
	// its own first-seen intern table, independent of the others.
	for k := range shardSinks {
		var buf bytes.Buffer
		w := eventlog.NewWriter(&buf)
		for _, ev := range shardSinks[k].Events {
			w.Append(ev)
		}
		if err := w.Err(); err != nil {
			t.Fatalf("shard %d: encode: %v", k, err)
		}
		rd := eventlog.NewReader(&buf, eventlog.Filter{})
		var ev eventlog.Event
		for i := 0; ; i++ {
			if err := rd.Next(&ev); err != nil {
				if i != len(shardSinks[k].Events) {
					t.Fatalf("shard %d: decoded %d of %d events: %v", k, i, len(shardSinks[k].Events), err)
				}
				break
			}
			if ev != shardSinks[k].Events[i] {
				t.Fatalf("shard %d event %d: codec round trip changed the record:\n got %+v\nwant %+v",
					k, i, ev, shardSinks[k].Events[i])
			}
		}
	}

	// The control log must be exactly the sequential log minus serving:
	// same non-impression records in the same order.
	var nonImpr []eventlog.Event
	for _, ev := range single.Events {
		if ev.Type != eventlog.TypeImpression {
			nonImpr = append(nonImpr, ev)
		}
	}
	if len(control.Events) != len(nonImpr) {
		t.Fatalf("control log has %d events, sequential log has %d non-impression events",
			len(control.Events), len(nonImpr))
	}
	for i := range nonImpr {
		if control.Events[i] != nonImpr[i] {
			t.Fatalf("control event %d differs from sequential log:\n got %+v\nwant %+v",
				i, control.Events[i], nonImpr[i])
		}
	}

	// Shard blocks are contiguous in query order, so concatenating each
	// day's shard events (shards in order) must reproduce the sequential
	// log's impression stream record for record.
	var mergedImpr []eventlog.Event
	cursors := make([]int, workers)
	for day := int32(0); day < int32(cfg.Days); day++ {
		for k := 0; k < workers; k++ {
			evs := shardSinks[k].Events
			for cursors[k] < len(evs) && evs[cursors[k]].Day == day {
				mergedImpr = append(mergedImpr, evs[cursors[k]])
				cursors[k]++
			}
		}
	}
	for k, c := range cursors {
		if c != len(shardSinks[k].Events) {
			t.Fatalf("shard %d: %d events not consumed by the day merge", k, len(shardSinks[k].Events)-c)
		}
	}
	var seqImpr []eventlog.Event
	for _, ev := range single.Events {
		if ev.Type == eventlog.TypeImpression {
			seqImpr = append(seqImpr, ev)
		}
	}
	if len(mergedImpr) != len(seqImpr) {
		t.Fatalf("merged shard logs have %d impressions, sequential log has %d",
			len(mergedImpr), len(seqImpr))
	}
	for i := range seqImpr {
		if mergedImpr[i] != seqImpr[i] {
			t.Fatalf("merged impression %d differs from sequential log:\n got %+v\nwant %+v",
				i, mergedImpr[i], seqImpr[i])
		}
	}

	// Replaying control + merged shard impressions rebuilds the live
	// collector digest for digest, same as replaying the sequential log.
	replay := func(streams ...[]eventlog.Event) testutil.CollectorDigestSet {
		rep := dataset.NewReplayer(dataset.NewCollector(cfg.Windows, cfg.SampleWindow))
		for _, evs := range streams {
			for _, ev := range evs {
				rep.Append(ev)
			}
		}
		return testutil.CollectorDigests(rep.Collector())
	}
	if got := replay(control.Events, mergedImpr); got != live {
		t.Errorf("sharded-log replay diverges from live collector:\n got %+v\nwant %+v", got, live)
	}
	if got := replay(single.Events); got != live {
		t.Errorf("sequential-log replay diverges from live collector:\n got %+v\nwant %+v", got, live)
	}
}

// TestShardSinkCountMismatch pins the guard: attaching a sink set whose
// length disagrees with the worker count must panic loudly rather than
// silently misroute shard events.
func TestShardSinkCountMismatch(t *testing.T) {
	cfg := matrixConfig(7, 2)
	cfg.Days = 1
	cfg.InitialLegit = 20
	s := sim.New(cfg)
	s.SetShardEventSinks([]eventlog.Sink{&eventlog.SliceSink{}})
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched shard sink count did not panic")
		}
	}()
	s.Run()
}
