// Package sim is the discrete-event engine that ties the substrates
// together into the two-year ecosystem the paper measures: daily account
// arrivals with a rising fraud share, agent campaign management, the
// query/auction/click serving loop, billing, and the nightly detection
// sweep — all deterministic under a single seed.
package sim

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/agents"
	"repro/internal/auction"
	"repro/internal/clicks"
	"repro/internal/dataset"
	"repro/internal/detection"
	"repro/internal/eventlog"
	"repro/internal/platform"
	"repro/internal/queries"
	"repro/internal/simclock"
	"repro/internal/stats"
	"repro/internal/verticals"
)

// Config parameterizes a simulation run.
type Config struct {
	Seed uint64

	// Days is the simulated span; the standard horizon covers the paper's
	// full 1/Y1–1/Y3 range.
	Days simclock.Day

	// QueriesPerDay is the served search volume.
	QueriesPerDay int

	// Workers sets how many goroutines the day loop uses — agent campaign
	// planning, query serving, and the nightly detection scan are all
	// sharded across the pool; 0 (the default) uses runtime.GOMAXPROCS.
	// Every phase follows the freeze-then-merge contract (DESIGN.md §7–8)
	// so that every seeded outcome — dataset digests, billing, event-log
	// bytes, RNG stream positions — is byte-identical across all Workers
	// values (see the differential matrices in serve_test.go and
	// dayloop_test.go); the setting is therefore a pure throughput knob
	// and, unlike the shape parameters above, may differ across a
	// checkpoint/resume boundary.
	Workers int

	// RegistrationsPerDay is the mean daily account-arrival count.
	RegistrationsPerDay float64

	// FraudShareStart/End set the fraudulent fraction of new
	// registrations, ramping linearly ("generally more than a third — and
	// near the end more than half" §4.1).
	FraudShareStart float64
	FraudShareEnd   float64

	// InitialLegit seeds the pre-existing legitimate advertiser base at
	// study start (the ecosystem predates the measurement window).
	InitialLegit int

	// ReRegisterProb is the probability that a shut-down fraudulent
	// actor returns with a fresh account ("fraudulent advertisers rarely
	// walk away" §3.2; "a single fraudulent actor may register for
	// multiple accounts" §4.1). Re-registrations count toward Figure 1's
	// registration mix but carry burned identities, so they die faster.
	ReRegisterProb float64
	// ReRegisterDelayMean is the mean days before the actor returns.
	ReRegisterDelayMean float64

	// DisableKeywordPockets is an ablation hook: fraud agents sample the
	// whole keyword universe instead of converging on shared
	// affiliate-program pockets.
	DisableKeywordPockets bool

	// CompromisesPerDay is the expected number of legitimate advertiser
	// accounts hijacked per day (§2's second fraud channel: "they
	// compromise the accounts of existing legitimate advertisers").
	// Hijacked accounts run the attacker's campaigns on the victim's
	// payment standing until account-takeover signals catch them.
	CompromisesPerDay float64

	Auction   auction.Config
	Detection detection.Config

	// FullCreatives generates complete ad text (small runs and examples).
	FullCreatives bool

	// Windows are the named measurement windows tracked per account;
	// SampleWindow feeds the global Table 3/4 counters.
	Windows      []simclock.NamedWindow
	SampleWindow simclock.Window

	// Progress, when non-nil, receives a line every 30 simulated days.
	Progress func(string)

	// Events, when non-nil, receives every record the run produces —
	// registrations, campaign actions, impressions, detections — as an
	// append-only event stream (see internal/eventlog). Emission happens
	// from the single simulation goroutine and consumes no randomness, so
	// attaching a sink changes neither behavior nor seeded outcomes; nil
	// keeps the non-logging fast path.
	Events eventlog.Sink
}

// DefaultConfig is the full-scale two-year run used by cmd/experiments.
func DefaultConfig() Config {
	return Config{
		Seed:                42,
		Days:                simclock.Horizon,
		QueriesPerDay:       25000,
		RegistrationsPerDay: 66,
		FraudShareStart:     0.31,
		FraudShareEnd:       0.46,
		InitialLegit:        6000,
		ReRegisterProb:      0.30,
		ReRegisterDelayMean: 2.5,
		CompromisesPerDay:   0.25,
		Auction:             auction.DefaultConfig(),
		Detection:           detection.DefaultConfig(),
		Windows:             simclock.Periods(),
		SampleWindow:        simclock.Y1Q2,
	}
}

// MediumConfig trades some statistical depth for speed; it still covers
// the full horizon, so every experiment remains meaningful. This is the
// scale the benchmark harness uses.
func MediumConfig() Config {
	c := DefaultConfig()
	c.QueriesPerDay = 8000
	c.RegistrationsPerDay = 36
	c.InitialLegit = 2500
	return c
}

// SmallConfig is a fast configuration for tests: it still spans Y1Q2 (the
// window most analyses use) but stops mid-year.
func SmallConfig() Config {
	c := DefaultConfig()
	c.Days = 200
	c.QueriesPerDay = 1500
	c.RegistrationsPerDay = 12
	c.InitialLegit = 400
	return c
}

// Result summarizes a completed run. The live objects — platform and
// collector — are what the measurement library consumes.
type Result struct {
	Config    Config
	Platform  *platform.Platform
	Collector *dataset.Collector

	Registrations      int
	FraudRegistrations int
	Compromises        int
	Auctions           int64
	Impressions        int64
	Clicks             int64
	FraudClicks        int64
	Spend              float64
	FraudSpend         float64
	RevenueLost        float64
	ShutdownsByStage   map[dataset.DetectionStage]int
	Elapsed            time.Duration
}

// Sim is a running simulation.
type Sim struct {
	cfg      Config
	rng      *stats.RNG
	p        *platform.Platform
	col      *dataset.Collector
	qgen     *queries.Generator
	factory  *agents.Factory
	runtime  *agents.Runtime
	pipeline *detection.Pipeline
	model    *clicks.Model

	arrRNG   *stats.RNG
	clickRNG *stats.RNG

	live []*agents.Agent
	// fraudLive counts live-list agents whose accounts are fraudulent and
	// still active, maintained incrementally (register, compromise,
	// shutdown) so the progress callback does not rescan the population.
	fraudLive int
	// plans is the agent phase's reusable per-agent plan buffer
	// (workers > 1 only); see dayloop.go.
	plans []agents.StepPlan

	// fraudProfiles remembers each fraud account's profile so shutdowns
	// can spawn next-generation re-registrations.
	fraudProfiles map[platform.AccountID]agents.Profile
	// pendingReregs are scheduled actor returns, kept day-ordered.
	pendingReregs map[simclock.Day][]agents.Profile

	// eng is the serving engine (worker shards, page caches, per-day
	// staging); built lazily so SetWorkers can apply after Restore.
	eng *serveEngine

	events eventlog.Sink
	// shardSinks, when set, receives each serving shard's impression
	// events instead of the main sink (see SetShardEventSinks).
	shardSinks []eventlog.Sink

	// day is the next day to simulate, phase the next phase of that day,
	// and seeded records whether the initial population warmup has run.
	// Together they are the resume cursor.
	day     simclock.Day
	phase   Phase
	seeded  bool
	started time.Time
	timing  *PhaseTimes
	allocs  *PhaseAllocs

	res Result
}

// New wires up a simulation from the configuration.
func New(cfg Config) *Sim {
	if cfg.Days <= 0 {
		cfg.Days = simclock.Horizon
	}
	s := newWired(cfg, platform.New(), dataset.NewCollector(cfg.Windows, cfg.SampleWindow))
	if cfg.Events != nil {
		s.SetEvents(cfg.Events)
	}
	return s
}

// newWired builds the object graph around an existing platform and
// collector. It is the shared core of New and Restore: construction (and
// its RNG forking order) is identical in both paths; Restore then
// overwrites every mutable stream and table.
func newWired(cfg Config, p *platform.Platform, col *dataset.Collector) *Sim {
	root := stats.NewRNG(cfg.Seed)
	qgen := queries.NewGenerator(root.ForkNamed("queries"))
	factory := agents.NewFactory(root.ForkNamed("factory"))
	factory.SetPocketsDisabled(cfg.DisableKeywordPockets)
	runtime := agents.NewRuntime(p, col, qgen.Universe, root.ForkNamed("runtime"))
	runtime.FullCreatives = cfg.FullCreatives
	pipeline := detection.New(cfg.Detection, root.ForkNamed("pipeline"), p, col, cfg.Days)
	return &Sim{
		cfg:           cfg,
		rng:           root,
		p:             p,
		col:           col,
		qgen:          qgen,
		factory:       factory,
		runtime:       runtime,
		pipeline:      pipeline,
		model:         clicks.DefaultModel(),
		arrRNG:        root.ForkNamed("arrivals"),
		clickRNG:      root.ForkNamed("clicks"),
		fraudProfiles: make(map[platform.AccountID]agents.Profile),
		pendingReregs: make(map[simclock.Day][]agents.Profile),
		res:           Result{Config: cfg, Platform: p, Collector: col, ShutdownsByStage: nil},
	}
}

// SetEvents attaches (or, with nil, detaches) the event sink on the sim
// and every emitting component. Restore uses it to reattach a sink that
// could not travel through the snapshot.
func (s *Sim) SetEvents(sink eventlog.Sink) {
	s.events = sink
	s.cfg.Events = sink
	s.res.Config.Events = sink
	s.p.SetEvents(sink)
	s.runtime.Events = sink
	s.pipeline.Events = sink
}

// SetProgress attaches a progress callback (Restore cannot carry one
// through the snapshot).
func (s *Sim) SetProgress(fn func(string)) {
	s.cfg.Progress = fn
	s.res.Config.Progress = fn
}

// SetWorkers overrides the serving worker count (see Config.Workers) on
// a constructed or restored Sim. Because outcomes are byte-identical
// across worker counts, changing it mid-run — e.g. resuming a
// checkpointed run on a different machine — does not perturb the
// trajectory.
func (s *Sim) SetWorkers(n int) {
	s.cfg.Workers = n
	s.res.Config.Workers = n
	s.eng = nil // rebuilt with the new shard count on the next served day
}

// resolveWorkers maps Config.Workers onto an effective worker count.
func (s *Sim) resolveWorkers() int {
	w := s.cfg.Workers
	if w <= 0 {
		w = maxprocs()
	}
	if w < 1 {
		w = 1
	}
	return w
}

// SetShardEventSinks routes serving-impression events to one sink per
// worker shard instead of the main Events sink: shard k's sink receives
// exactly the impressions of shard k's queries, in query order, flushed
// at each day barrier. Non-serving events (registrations, campaign
// actions, detections) still go to the main sink, so the main log plus
// the shard logs — merged per day, shards in order — reconstruct the
// sequential engine's single log record for record. len(sinks) must
// equal the effective worker count; nil restores single-sink routing.
//
// Individual entries may be nil: that shard's impressions are then
// discarded instead of logged. A cluster replica (internal/cluster)
// exploits this — every worker process computes the full trajectory but
// keeps a sink only at its own shard index, so the replicas together
// write each event exactly once.
func (s *Sim) SetShardEventSinks(sinks []eventlog.Sink) {
	s.shardSinks = sinks
}

// Platform exposes the underlying ad network (read access for analyses).
func (s *Sim) Platform() *platform.Platform { return s.p }

// Collector exposes the dataset collector.
func (s *Sim) Collector() *dataset.Collector { return s.col }

// Queries exposes the query generator (examples use its universes).
func (s *Sim) Queries() *queries.Generator { return s.qgen }

// fraudShare returns the fraudulent fraction of arrivals on a day.
func (s *Sim) fraudShare(day simclock.Day) float64 {
	frac := float64(day) / float64(s.cfg.Days)
	return s.cfg.FraudShareStart + frac*(s.cfg.FraudShareEnd-s.cfg.FraudShareStart)
}

// detectability derives the pipeline's latent risk surface from a profile.
func detectability(prof agents.Profile) detection.Detectability {
	blend := 0.9 - 0.5*prof.Scamminess // legitimate advertisers blend by definition
	if prof.Fraud {
		blend = 0.15 + 0.25*prof.Quality
		if prof.Class == agents.ClassFraudProlific {
			blend = 0.75 + 0.2*prof.Quality
		}
	}
	if blend > 0.98 {
		blend = 0.98
	}
	return detection.Detectability{
		PageRisk:    prof.Scamminess,
		TextRisk:    1 - prof.Evasion,
		Blend:       blend,
		HasPhoneAds: prof.Vertical == verticals.TechSupport,
		Vertical:    prof.Vertical,
		Target:      prof.Target,
		Fraud:       prof.Fraud,
		Prolific:    prof.Class == agents.ClassFraudProlific,
		Generation:  prof.Generation,
	}
}

// register runs one arrival through registration, screening, and (if
// approved) enrollment and agent spawn.
func (s *Sim) register(prof agents.Profile, at simclock.Stamp) {
	s.res.Registrations++
	if prof.Fraud {
		s.res.FraudRegistrations++
	}
	acct := s.p.Register(platform.RegistrationRequest{
		At:              at,
		Country:         prof.Country,
		Fraud:           prof.Fraud,
		PrimaryVertical: prof.Vertical,
		StolenPayment:   prof.StolenPayment,
		Generation:      prof.Generation,
	})
	det := detectability(prof)
	if s.events != nil && prof.Generation > 0 {
		s.events.Append(eventlog.Event{
			Type:    eventlog.TypeReregistration,
			Day:     int32(at.Day()),
			Account: int32(acct.ID),
			N:       int32(prof.Generation),
		})
	}
	if prof.Fraud && s.cfg.ReRegisterProb > 0 {
		s.fraudProfiles[acct.ID] = prof
	}
	if !s.pipeline.Screen(acct.ID, det, at) {
		s.maybeReregister(acct.ID, at.Day())
		return
	}
	if err := s.p.Approve(acct.ID); err != nil {
		panic(err)
	}
	s.pipeline.Enroll(acct.ID, det, at)
	s.live = append(s.live, s.runtime.Spawn(prof, acct.ID, at))
	if prof.Fraud {
		s.fraudLive++
	}
}

// maybeReregister rolls the recidivism dice for a just-terminated fraud
// account and schedules the actor's next-generation return.
func (s *Sim) maybeReregister(id platform.AccountID, day simclock.Day) {
	prof, ok := s.fraudProfiles[id]
	if !ok {
		return
	}
	delete(s.fraudProfiles, id)
	if !s.arrRNG.Bool(s.cfg.ReRegisterProb) {
		return
	}
	due := day + 1 + simclock.Day(stats.Exponential(s.arrRNG, s.cfg.ReRegisterDelayMean))
	if due >= s.cfg.Days {
		return
	}
	s.pendingReregs[due] = append(s.pendingReregs[due], s.factory.Recidivate(prof))
}

// seedInitialPopulation creates the pre-existing legitimate advertiser
// base with registration stamps before the study epoch, then lets them
// build their portfolios during a query-free warmup.
func (s *Sim) seedInitialPopulation() {
	for i := 0; i < s.cfg.InitialLegit; i++ {
		prof := s.factory.NewLegit()
		at := simclock.Stamp(-s.arrRNG.Range(5, 360))
		s.register(prof, at)
	}
	for day := simclock.Day(-40); day < 0; day++ {
		s.runAgents(day)
	}
}

// Run executes the simulation to the horizon and returns the result. On a
// fresh Sim it runs the whole span; on a restored Sim it continues from
// the checkpointed day.
func (s *Sim) Run() *Result {
	for s.Step() {
	}
	return s.Finish()
}

// Day returns the next day the simulation will run (0 before the first
// Step; the checkpointed day on a restored Sim).
func (s *Sim) Day() simclock.Day { return s.day }

// Step advances the simulation to the next day boundary: the remaining
// phases of the current day (all four, starting from a fresh Sim or a
// day-boundary checkpoint). The first call on a fresh Sim also seeds the
// initial population. It returns false — without running anything — once
// the horizon is reached, so `for s.Step() {}` drives a run to
// completion.
func (s *Sim) Step() bool {
	if s.day >= s.cfg.Days {
		return false
	}
	day := s.day
	for s.day == day {
		s.StepPhase()
	}
	s.emitProgress(day)
	return s.day < s.cfg.Days
}

// emitProgress reports the every-30-days progress line. The nil guard
// lives here, ahead of the fmt.Sprintf, so the common no-callback run
// never pays the string build and its interface-boxing allocations.
func (s *Sim) emitProgress(day simclock.Day) {
	if s.cfg.Progress == nil || int(day)%30 != 29 {
		return
	}
	s.cfg.Progress(fmt.Sprintf("day %d/%d (%s): accounts=%d monitored=%d liveAds=%d clicks=%d fraudClicks=%d fraudAlive=%d",
		day+1, s.cfg.Days, day.Label(), s.p.NumAccounts(), s.pipeline.Monitored(), s.p.LiveAds(), s.res.Clicks, s.res.FraudClicks, s.fraudLive))
}

// Finish seals the result after the last Step. Elapsed covers only this
// process's share of a resumed run.
func (s *Sim) Finish() *Result {
	s.res.ShutdownsByStage = s.pipeline.Shutdowns
	if !s.started.IsZero() {
		s.res.Elapsed = time.Since(s.started)
	}
	return &s.res
}

// compromiseAccounts hijacks a Poisson number of mature legitimate
// accounts: the attacker inherits the victim's identity and genuine
// payment instrument and runs fraud campaigns on it until account-takeover
// signals catch up. From the measurement library's perspective the whole
// account becomes "fraudulent" once shut down — the same labeling
// imperfection the paper accepts (§3.2).
func (s *Sim) compromiseAccounts(day simclock.Day) {
	if s.cfg.CompromisesPerDay <= 0 || len(s.live) == 0 {
		return
	}
	n := stats.Poisson(s.arrRNG, s.cfg.CompromisesPerDay)
	for i := 0; i < n; i++ {
		for try := 0; try < 20; try++ {
			a := s.live[s.arrRNG.Intn(len(s.live))]
			acct := s.p.MustAccount(a.Account)
			if acct.Fraud || !acct.Alive() || float64(day)-float64(acct.Created) < 30 {
				continue
			}
			prof := s.factory.NewFraud()
			prof.StolenPayment = false // the victim's instrument is genuine
			s.runtime.Hijack(a, prof, day)
			acct.Fraud = true
			acct.PrimaryVertical = prof.Vertical
			acct.StolenPayment = false
			det := detectability(prof)
			det.Blend = 0.5 // sudden behavior change is itself a signal
			s.pipeline.Enroll(acct.ID, det, simclock.StampAt(day, s.arrRNG.Float64()))
			s.res.Compromises++
			s.fraudLive++
			break
		}
	}
}

// maxprocs reports the runtime's effective parallelism; split out so the
// import list stays honest about the one runtime dependency.
func maxprocs() int { return runtime.GOMAXPROCS(0) }
