package sim

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/platform"
	"repro/internal/simclock"
	"repro/internal/stats"
)

// tinyConfig is a fast configuration for integration tests: ~30s of work
// compressed to a couple of seconds.
func tinyConfig(seed uint64) Config {
	cfg := SmallConfig()
	cfg.Seed = seed
	cfg.Days = 120
	cfg.QueriesPerDay = 800
	cfg.RegistrationsPerDay = 10
	cfg.InitialLegit = 250
	return cfg
}

// tinyRun memoizes one tiny simulation across tests in this package. The
// sync.Once (rather than a lazy nil check) keeps the cache safe under
// `go test -race` if any test here ever opts into t.Parallel().
var tinyRun struct {
	once sync.Once
	res  *Result
}

func tinyResult(t *testing.T) *Result {
	t.Helper()
	tinyRun.once.Do(func() {
		tinyRun.res = New(tinyConfig(7)).Run()
	})
	return tinyRun.res
}

func TestDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("two extra sims")
	}
	cfg := tinyConfig(99)
	cfg.Days = 60
	a := New(cfg).Run()
	b := New(cfg).Run()
	if a.Registrations != b.Registrations || a.Clicks != b.Clicks ||
		a.Impressions != b.Impressions || a.Spend != b.Spend ||
		a.FraudClicks != b.FraudClicks {
		t.Fatalf("same seed diverged:\n%+v\n%+v", summary(a), summary(b))
	}
	// And a different seed must diverge.
	cfg.Seed = 100
	c := New(cfg).Run()
	if c.Clicks == a.Clicks && c.Impressions == a.Impressions && c.Spend == a.Spend {
		t.Fatal("different seeds produced identical runs")
	}
}

func summary(r *Result) map[string]int64 {
	return map[string]int64{
		"regs": int64(r.Registrations), "clicks": r.Clicks, "impr": r.Impressions,
	}
}

func TestBasicVolume(t *testing.T) {
	res := tinyResult(t)
	if res.Registrations == 0 || res.Auctions == 0 || res.Clicks == 0 {
		t.Fatalf("empty economy: %+v", res)
	}
	if res.FraudClicks == 0 {
		t.Fatal("no fraud clicks at all")
	}
	if res.Impressions < res.Clicks {
		t.Fatal("more clicks than impressions")
	}
	frac := float64(res.FraudRegistrations) / float64(res.Registrations)
	if frac < 0.25 || frac > 0.60 {
		t.Fatalf("fraud registration share %v outside configured ramp", frac)
	}
}

func TestLedgerConsistency(t *testing.T) {
	res := tinyResult(t)
	l := res.Platform.Ledger()
	// Platform-wide billed totals must equal the sum of account spends
	// and the result counter.
	var acctSpend float64
	var acctClicks, acctImpr int64
	for _, a := range res.Platform.Accounts() {
		acctSpend += a.Spend
		acctClicks += a.Clicks
		acctImpr += a.Impressions
	}
	if !close(acctSpend, l.TotalBilled()) || !close(acctSpend, res.Spend) {
		t.Fatalf("spend mismatch: accounts=%v ledger=%v result=%v", acctSpend, l.TotalBilled(), res.Spend)
	}
	if acctClicks != res.Clicks {
		t.Fatalf("click mismatch: accounts=%d result=%d", acctClicks, res.Clicks)
	}
	if acctImpr != res.Impressions {
		t.Fatalf("impression mismatch: accounts=%d result=%d", acctImpr, res.Impressions)
	}
	if l.TotalLost() > l.TotalBilled() {
		t.Fatal("lost more than billed")
	}
	if l.TotalLost() != res.RevenueLost {
		t.Fatal("revenue-lost counter mismatch")
	}
}

func TestCollectorAgreesWithPlatform(t *testing.T) {
	res := tinyResult(t)
	// Weekly aggregates summed over all accounts must reproduce the
	// platform totals.
	var impr, clicks int64
	var spend float64
	for _, a := range res.Platform.Accounts() {
		agg := res.Collector.Agg(a.ID)
		if agg == nil {
			continue
		}
		for _, w := range agg.Weeks {
			impr += w.Impressions
			clicks += w.Clicks
			spend += w.Spend
		}
	}
	if impr != res.Impressions || clicks != res.Clicks || !close(spend, res.Spend) {
		t.Fatalf("collector totals (%d/%d/%v) != result (%d/%d/%v)",
			impr, clicks, spend, res.Impressions, res.Clicks, res.Spend)
	}
}

func TestDetectionRecordsMatchAccountStates(t *testing.T) {
	res := tinyResult(t)
	for _, rec := range res.Collector.Detections() {
		a := res.Platform.MustAccount(rec.Account)
		if a.Status != platform.StatusShutdown && a.Status != platform.StatusRejected {
			t.Fatalf("detection record for %s account %d", a.Status, a.ID)
		}
	}
	// Every shutdown/rejected account must have a detection record.
	for _, a := range res.Platform.Accounts() {
		if a.Status == platform.StatusShutdown || a.Status == platform.StatusRejected {
			if _, ok := res.Collector.DetectedAt(a.ID); !ok {
				t.Fatalf("account %d %s without detection record", a.ID, a.Status)
			}
		}
	}
}

func TestDetectionTimesAfterCreation(t *testing.T) {
	res := tinyResult(t)
	for _, a := range res.Platform.Accounts() {
		if at, ok := res.Collector.DetectedAt(a.ID); ok {
			if at < a.Created {
				t.Fatalf("account %d detected (%v) before creation (%v)", a.ID, at, a.Created)
			}
		}
	}
}

func TestFraudLabelsMostlyCorrect(t *testing.T) {
	res := tinyResult(t)
	study := core.NewStudy(res.Platform, res.Collector, res.Config.Days)
	var truePos, falsePos, labelled int
	for _, a := range res.Platform.Accounts() {
		if study.IsFraudulent(a.ID) {
			labelled++
			if a.Fraud {
				truePos++
			} else {
				falsePos++
			}
		}
	}
	if labelled == 0 {
		t.Fatal("nothing labelled")
	}
	// "accounts that are entirely shutdown are overwhelmingly fraudulent,
	// with the rate of 'friendly fire' being rather low" (§3.2).
	if float64(falsePos)/float64(labelled) > 0.02 {
		t.Fatalf("friendly fire %d of %d labels", falsePos, labelled)
	}
}

func TestFraudLifetimesShort(t *testing.T) {
	res := tinyResult(t)
	study := core.NewStudy(res.Platform, res.Collector, res.Config.Days)
	lts := study.Lifetimes(simclock.Window{Start: 0, End: 90}, false)
	if len(lts) < 50 {
		t.Fatalf("too few detected fraud accounts: %d", len(lts))
	}
	med := stats.Median(lts)
	if med > 3 {
		t.Fatalf("median fraud lifetime %v days — detection too slow", med)
	}
}

func TestImpressionRatesFraudHigher(t *testing.T) {
	res := tinyResult(t)
	study := core.NewStudy(res.Platform, res.Collector, res.Config.Days)
	win := res.Collector.Windows()[0]
	subs := study.BuildSubsets(win, 0, 500, stats.NewRNG(5))
	rate := func(id platform.AccountID) float64 {
		return study.ImpressionRate(id, win.Window, 0)
	}
	fr := subs.FWithClicks.ECDF(rate)
	nf := subs.NFWithClicks.ECDF(rate)
	if fr.N() < 150 || nf.N() < 150 {
		t.Skipf("underpowered at tiny scale (n=%d/%d); the report harness checks this at full scale", fr.N(), nf.N())
	}
	if fr.Median() <= nf.Median() {
		t.Fatalf("fraud impression rate (%v) not above non-fraud (%v) — Figure 5 shape lost",
			fr.Median(), nf.Median())
	}
}

func TestRejectedAccountsNeverServe(t *testing.T) {
	res := tinyResult(t)
	for _, a := range res.Platform.Accounts() {
		if a.Status == platform.StatusRejected && (a.Impressions > 0 || len(a.Ads) > 0) {
			t.Fatalf("rejected account %d served %d impressions", a.ID, a.Impressions)
		}
	}
}

func TestShutdownStopsActivity(t *testing.T) {
	res := tinyResult(t)
	// No account's weekly activity may extend past its shutdown week.
	for _, a := range res.Platform.Accounts() {
		if a.Status != platform.StatusShutdown {
			continue
		}
		agg := res.Collector.Agg(a.ID)
		if agg == nil {
			continue
		}
		shutWeek := int32(a.ShutdownAt.Day().Week())
		for _, w := range agg.Weeks {
			if w.Week > shutWeek {
				t.Fatalf("account %d active in week %d after shutdown week %d", a.ID, w.Week, shutWeek)
			}
		}
	}
}

func TestProgressCallback(t *testing.T) {
	if testing.Short() {
		t.Skip("extra sim")
	}
	cfg := tinyConfig(3)
	cfg.Days = 61
	called := 0
	cfg.Progress = func(string) { called++ }
	New(cfg).Run()
	if called != 2 {
		t.Fatalf("progress called %d times, want 2", called)
	}
}

func TestShutdownsByStagePopulated(t *testing.T) {
	res := tinyResult(t)
	total := 0
	for _, n := range res.ShutdownsByStage {
		total += n
	}
	if total == 0 {
		t.Fatal("no shutdowns recorded by stage")
	}
	if res.ShutdownsByStage[dataset.StageScreening] == 0 {
		t.Fatal("screening never rejected anyone")
	}
}

func close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-6*(1+abs(a)+abs(b))
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestLegitClosureKeepsEcosystemBounded(t *testing.T) {
	res := tinyResult(t)
	closed := 0
	for _, a := range res.Platform.Accounts() {
		if a.Status == platform.StatusClosed {
			closed++
			if a.Fraud {
				t.Fatalf("ground-truth fraud account %d closed voluntarily", a.ID)
			}
			if _, ok := res.Collector.DetectedAt(a.ID); ok {
				t.Fatalf("closed account %d has a detection record", a.ID)
			}
		}
	}
	if closed == 0 {
		t.Fatal("no accounts closed over 120 days (initial population includes old accounts)")
	}
}

func TestCompromisesHappenAndGetCaught(t *testing.T) {
	if testing.Short() {
		t.Skip("extra sim")
	}
	cfg := tinyConfig(13)
	cfg.CompromisesPerDay = 0.5
	res := New(cfg).Run()
	if res.Compromises == 0 {
		t.Fatal("no compromises at 0.5/day over 120 days")
	}
	// Hijacked accounts are ground-truth fraud with Generation 0 and a
	// pre-fraud history; most should be caught by the horizon.
	caught := 0
	for _, a := range res.Platform.Accounts() {
		if !a.Fraud || a.StolenPayment || a.Created >= 0 {
			// Compromised accounts in this config are mostly seeded
			// legit accounts (created < 0) flipped later; registered
			// fraud all use this path with StolenPayment sometimes, so
			// filter loosely and just count detections below.
			continue
		}
		if _, ok := res.Collector.DetectedAt(a.ID); ok {
			caught++
		}
	}
	if caught == 0 {
		t.Fatal("no compromised account was ever detected")
	}
}
