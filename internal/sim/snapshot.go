package sim

// Checkpoint support: State is the complete serializable state of a
// running simulation at a day boundary. The restore strategy is
// "reconstruct, then overwrite": Restore builds the object graph exactly
// the way New does (same construction order, same named RNG forks, same
// immutable tables — keyword universes, market weights, Zipf parameters),
// then overwrites every mutable piece: RNG stream positions, the platform
// tables and bid index (with posting-list tie order preserved — see
// platform.Snapshot), the collector aggregates, the detection pipeline's
// per-account records, the agent population, and the engine's own
// counters and cursors. A restored Sim continues the same deterministic
// trajectory as the original: the crash-chaos suite in this package
// proves digest-identity against uninterrupted runs.
//
// Two Config fields cannot travel through a snapshot: Progress (a func,
// which gob ignores) and Events (an interface, nil'd before encoding so
// gob skips it). Callers reattach both via SetProgress and SetEvents.

import (
	"fmt"
	"sort"

	"repro/internal/agents"
	"repro/internal/dataset"
	"repro/internal/detection"
	"repro/internal/platform"
	"repro/internal/queries"
	"repro/internal/simclock"
	"repro/internal/stats"
)

// Counters are the Result's accumulated run totals.
type Counters struct {
	Registrations      int
	FraudRegistrations int
	Compromises        int
	Auctions           int64
	Impressions        int64
	Clicks             int64
	FraudClicks        int64
	Spend              float64
	FraudSpend         float64
	RevenueLost        float64
}

// FraudProfileEntry is one remembered fraud profile, keyed by account.
type FraudProfileEntry struct {
	ID      platform.AccountID
	Profile agents.Profile
}

// PendingRereg is one day's scheduled actor returns, in scheduling order.
type PendingRereg struct {
	Day      simclock.Day
	Profiles []agents.Profile
}

// State is the full serializable state of a Sim at a phase boundary
// (between two StepPhase calls; a day boundary is the common case, where
// Phase is PhaseArrivals).
type State struct {
	Config Config
	Day    simclock.Day
	Phase  Phase
	Seeded bool

	Counters Counters

	RootRNG  stats.RNGState
	ArrRNG   stats.RNGState
	ClickRNG stats.RNGState

	Platform  *platform.Snapshot
	Collector *dataset.CollectorState
	Pipeline  *detection.PipelineState
	Queries   queries.GeneratorState
	Factory   agents.FactoryState
	Runtime   agents.RuntimeState

	Live          []agents.AgentState
	FraudProfiles []FraudProfileEntry
	PendingReregs []PendingRereg
}

// Snapshot captures the simulation's full state. It must be called at a
// phase boundary (between StepPhase calls — day boundaries included,
// never mid-phase) and the returned State shares memory with the live
// sim: encode it before stepping further.
func (s *Sim) Snapshot() *State {
	cfg := s.cfg
	cfg.Progress = nil
	cfg.Events = nil
	st := &State{
		Config: cfg,
		Day:    s.day,
		Phase:  s.phase,
		Seeded: s.seeded,
		Counters: Counters{
			Registrations:      s.res.Registrations,
			FraudRegistrations: s.res.FraudRegistrations,
			Compromises:        s.res.Compromises,
			Auctions:           s.res.Auctions,
			Impressions:        s.res.Impressions,
			Clicks:             s.res.Clicks,
			FraudClicks:        s.res.FraudClicks,
			Spend:              s.res.Spend,
			FraudSpend:         s.res.FraudSpend,
			RevenueLost:        s.res.RevenueLost,
		},
		RootRNG:   s.rng.State(),
		ArrRNG:    s.arrRNG.State(),
		ClickRNG:  s.clickRNG.State(),
		Platform:  s.p.Snapshot(),
		Collector: s.col.State(),
		Pipeline:  s.pipeline.State(),
		Queries:   s.qgen.State(),
		Factory:   s.factory.State(),
		Runtime:   s.runtime.State(),
	}
	st.Live = make([]agents.AgentState, len(s.live))
	for i, a := range s.live {
		st.Live[i] = a.State()
	}
	for id, prof := range s.fraudProfiles {
		st.FraudProfiles = append(st.FraudProfiles, FraudProfileEntry{id, prof})
	}
	sort.Slice(st.FraudProfiles, func(i, j int) bool { return st.FraudProfiles[i].ID < st.FraudProfiles[j].ID })
	for day, profs := range s.pendingReregs {
		st.PendingReregs = append(st.PendingReregs, PendingRereg{day, profs})
	}
	sort.Slice(st.PendingReregs, func(i, j int) bool { return st.PendingReregs[i].Day < st.PendingReregs[j].Day })
	return st
}

// Restore rebuilds a Sim from a snapshot. Every cross-reference is
// validated so hostile snapshot bytes yield an error, never a panic.
// Progress and Events are not restored; reattach them with SetProgress
// and SetEvents before Run.
func Restore(st *State) (*Sim, error) {
	if st == nil {
		return nil, fmt.Errorf("sim: nil state")
	}
	cfg := st.Config
	if cfg.Days <= 0 {
		return nil, fmt.Errorf("sim: snapshot config has non-positive horizon %d", cfg.Days)
	}
	if st.Day < 0 || st.Day > cfg.Days {
		return nil, fmt.Errorf("sim: snapshot day %d outside horizon %d", st.Day, cfg.Days)
	}
	if st.Phase > PhaseDetection {
		return nil, fmt.Errorf("sim: snapshot phase %d invalid", st.Phase)
	}
	p, err := platform.FromSnapshot(st.Platform)
	if err != nil {
		return nil, err
	}
	col := dataset.NewCollector(cfg.Windows, cfg.SampleWindow)
	if err := col.SetState(st.Collector); err != nil {
		return nil, err
	}
	s := newWired(cfg, p, col)
	if err := s.pipeline.SetState(st.Pipeline); err != nil {
		return nil, err
	}
	if err := s.qgen.SetState(st.Queries); err != nil {
		return nil, err
	}
	s.factory.SetState(st.Factory)
	s.runtime.SetState(st.Runtime)
	s.rng.SetState(st.RootRNG)
	s.arrRNG.SetState(st.ArrRNG)
	s.clickRNG.SetState(st.ClickRNG)

	s.live = make([]*agents.Agent, len(st.Live))
	for i, as := range st.Live {
		if int(as.Account) < 0 || int(as.Account) >= p.NumAccounts() {
			return nil, fmt.Errorf("sim: snapshot agent %d references unknown account %d", i, as.Account)
		}
		s.live[i] = agents.RestoreAgent(as)
		if acct := p.MustAccount(as.Account); acct.Fraud && acct.Alive() {
			s.fraudLive++
		}
	}
	for _, e := range st.FraudProfiles {
		s.fraudProfiles[e.ID] = e.Profile
	}
	for _, e := range st.PendingReregs {
		s.pendingReregs[e.Day] = e.Profiles
	}

	s.res.Registrations = st.Counters.Registrations
	s.res.FraudRegistrations = st.Counters.FraudRegistrations
	s.res.Compromises = st.Counters.Compromises
	s.res.Auctions = st.Counters.Auctions
	s.res.Impressions = st.Counters.Impressions
	s.res.Clicks = st.Counters.Clicks
	s.res.FraudClicks = st.Counters.FraudClicks
	s.res.Spend = st.Counters.Spend
	s.res.FraudSpend = st.Counters.FraudSpend
	s.res.RevenueLost = st.Counters.RevenueLost

	s.day = st.Day
	s.phase = st.Phase
	s.seeded = st.Seeded
	return s, nil
}
