// Package simclock defines virtual time for the advertiser-fraud
// simulation. The paper reports on a two-year measurement span labeled
// 1/Y1 through 1/Y3; we model it with a simplified calendar of 30-day
// months and 360-day years, which keeps window arithmetic exact and makes
// the month labels on reproduced figures match the paper's axes.
//
// No component of the simulator consults wall-clock time; all timestamps
// are Day values (whole days since the simulation epoch) with fractional
// within-day offsets carried separately where sub-day resolution matters
// (account lifetimes in Figure 2 are measured in fractional days).
package simclock

import "fmt"

// Calendar constants for the simplified simulation calendar.
const (
	DaysPerWeek    = 7
	DaysPerMonth   = 30
	MonthsPerYear  = 12
	DaysPerYear    = DaysPerMonth * MonthsPerYear // 360
	DaysPerQuarter = DaysPerYear / 4              // 90
)

// Day is a number of whole days since the simulation epoch (1/Y1).
type Day int

// Horizon is the full simulated span: two years plus one month of
// run-out, mirroring the paper's 1/Y1 – 1/Y3 measurement range.
const Horizon Day = 2*DaysPerYear + DaysPerMonth

// Year returns the 1-based simulation year containing d.
func (d Day) Year() int { return int(d)/DaysPerYear + 1 }

// Month returns the 1-based month within the year containing d.
func (d Day) Month() int { return (int(d)%DaysPerYear)/DaysPerMonth + 1 }

// Week returns the 0-based week index containing d.
func (d Day) Week() int { return int(d) / DaysPerWeek }

// MonthIndex returns the 0-based absolute month index since the epoch.
func (d Day) MonthIndex() int { return int(d) / DaysPerMonth }

// Label renders d as the paper's axis notation, e.g. "7/Y1" for month 7 of
// year 1.
func (d Day) Label() string { return fmt.Sprintf("%d/Y%d", d.Month(), d.Year()) }

// MonthStart returns the first day of the 0-based absolute month index m.
func MonthStart(m int) Day { return Day(m * DaysPerMonth) }

// Window is a half-open interval of days [Start, End).
type Window struct {
	Start, End Day
}

// Contains reports whether d falls within the window.
func (w Window) Contains(d Day) bool { return d >= w.Start && d < w.End }

// Days returns the window length in days.
func (w Window) Days() int { return int(w.End - w.Start) }

// Overlap returns the overlap (in days) between w and [start, end).
func (w Window) Overlap(start, end Day) int {
	lo, hi := w.Start, w.End
	if start > lo {
		lo = start
	}
	if end < hi {
		hi = end
	}
	if hi <= lo {
		return 0
	}
	return int(hi - lo)
}

// String renders the window using month labels.
func (w Window) String() string {
	return fmt.Sprintf("[%s, %s)", w.Start.Label(), w.End.Label())
}

// Named measurement windows used throughout the paper's evaluation. The
// five periods of Figure 4 are Y1Q2, OctY1, Y2Q1, AprY2 and OctY2; the
// in-depth behavioral analyses (Figures 5–17) use Y1Q2.
var (
	// Y1Q2 is the second quarter of year 1.
	Y1Q2 = Window{Start: DaysPerQuarter, End: 2 * DaysPerQuarter}
	// OctY1 is month 10 of year 1.
	OctY1 = Window{Start: 9 * DaysPerMonth, End: 10 * DaysPerMonth}
	// Y2Q1 is the first quarter of year 2 (the techsupport quarter, §5.2.1).
	Y2Q1 = Window{Start: DaysPerYear, End: DaysPerYear + DaysPerQuarter}
	// AprY2 is month 4 of year 2.
	AprY2 = Window{Start: DaysPerYear + 3*DaysPerMonth, End: DaysPerYear + 4*DaysPerMonth}
	// OctY2 is month 10 of year 2.
	OctY2 = Window{Start: DaysPerYear + 9*DaysPerMonth, End: DaysPerYear + 10*DaysPerMonth}
	// Year1 and Year2 cover the two full study years.
	Year1 = Window{Start: 0, End: DaysPerYear}
	Year2 = Window{Start: DaysPerYear, End: 2 * DaysPerYear}
	// Full covers the entire simulated horizon.
	Full = Window{Start: 0, End: Horizon}
)

// Periods returns the five named windows of Figure 4 in chronological
// order, keyed by the labels the paper uses in its legends.
func Periods() []NamedWindow {
	return []NamedWindow{
		{Name: "Q2 Year 1", Window: Y1Q2},
		{Name: "Oct. Year 1", Window: OctY1},
		{Name: "Q1 Year 2", Window: Y2Q1},
		{Name: "Apr. Year 2", Window: AprY2},
		{Name: "Oct. Year 2", Window: OctY2},
	}
}

// NamedWindow pairs a window with its legend label.
type NamedWindow struct {
	Name   string
	Window Window
}

// Stamp is a point in simulated time with sub-day resolution, used where
// the paper measures lifetimes in hours (e.g. "most will be shut down
// within eight hours of beginning to post advertisements").
type Stamp float64

// StampAt builds a Stamp from a day and a fraction of that day in [0, 1).
func StampAt(d Day, frac float64) Stamp { return Stamp(float64(d) + frac) }

// Day returns the whole day containing the stamp.
func (s Stamp) Day() Day { return Day(s) }

// DaysSince returns the (fractional) number of days elapsed since t.
func (s Stamp) DaysSince(t Stamp) float64 { return float64(s - t) }

// Hours returns the stamp's offset within its day, in hours.
func (s Stamp) Hours() float64 { return (float64(s) - float64(int(s))) * 24 }
