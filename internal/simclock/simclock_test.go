package simclock

import (
	"testing"
	"testing/quick"
)

func TestDayCalendar(t *testing.T) {
	cases := []struct {
		d     Day
		year  int
		month int
		label string
	}{
		{0, 1, 1, "1/Y1"},
		{29, 1, 1, "1/Y1"},
		{30, 1, 2, "2/Y1"},
		{359, 1, 12, "12/Y1"},
		{360, 2, 1, "1/Y2"},
		{719, 2, 12, "12/Y2"},
		{720, 3, 1, "1/Y3"},
	}
	for _, c := range cases {
		if c.d.Year() != c.year || c.d.Month() != c.month || c.d.Label() != c.label {
			t.Fatalf("day %d: got %d/%d %q, want %d/%d %q",
				c.d, c.d.Month(), c.d.Year(), c.d.Label(), c.month, c.year, c.label)
		}
	}
}

func TestWeekAndMonthIndex(t *testing.T) {
	if Day(6).Week() != 0 || Day(7).Week() != 1 {
		t.Fatal("week boundaries")
	}
	if Day(59).MonthIndex() != 1 || Day(60).MonthIndex() != 2 {
		t.Fatal("month index boundaries")
	}
	if MonthStart(2) != 60 {
		t.Fatal("MonthStart")
	}
}

func TestWindowContains(t *testing.T) {
	w := Window{Start: 10, End: 20}
	if w.Contains(9) || !w.Contains(10) || !w.Contains(19) || w.Contains(20) {
		t.Fatal("half-open semantics violated")
	}
	if w.Days() != 10 {
		t.Fatalf("Days() = %d", w.Days())
	}
}

func TestWindowOverlap(t *testing.T) {
	w := Window{Start: 10, End: 20}
	cases := []struct {
		s, e Day
		want int
	}{
		{0, 5, 0}, {0, 10, 0}, {0, 15, 5}, {12, 18, 6}, {15, 30, 5}, {20, 30, 0}, {0, 30, 10},
	}
	for _, c := range cases {
		if got := w.Overlap(c.s, c.e); got != c.want {
			t.Fatalf("Overlap(%d,%d) = %d, want %d", c.s, c.e, got, c.want)
		}
	}
}

func TestOverlapProperty(t *testing.T) {
	f := func(a16, b16, c16, d16 int16) bool {
		a, b, c, d := int(a16), int(b16), int(c16), int(d16)
		w := Window{Start: Day(a), End: Day(b)}
		o := w.Overlap(Day(c), Day(d))
		if o < 0 {
			return false
		}
		// Overlap can never exceed either interval's length.
		if b > a && o > b-a {
			return false
		}
		if d > c && o > d-c {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNamedPeriodsOrderedAndDisjointFromEpoch(t *testing.T) {
	ps := Periods()
	if len(ps) != 5 {
		t.Fatalf("want 5 periods, got %d", len(ps))
	}
	prev := Day(-1)
	for _, p := range ps {
		if p.Window.Start <= prev {
			t.Fatalf("periods not strictly ordered at %s", p.Name)
		}
		if p.Window.End > Horizon {
			t.Fatalf("period %s exceeds horizon", p.Name)
		}
		prev = p.Window.Start
	}
	if ps[0].Window != Y1Q2 {
		t.Fatal("first period must be Y1Q2")
	}
}

func TestY2Q1IsTechsupportQuarter(t *testing.T) {
	if Y2Q1.Start != DaysPerYear || Y2Q1.Days() != DaysPerQuarter {
		t.Fatalf("Y2Q1 = %v", Y2Q1)
	}
}

func TestStamp(t *testing.T) {
	s := StampAt(5, 0.5)
	if s.Day() != 5 {
		t.Fatalf("Day() = %d", s.Day())
	}
	if h := s.Hours(); h != 12 {
		t.Fatalf("Hours() = %v", h)
	}
	t0 := StampAt(3, 0.25)
	if d := s.DaysSince(t0); d != 2.25 {
		t.Fatalf("DaysSince = %v", d)
	}
}

func TestWindowString(t *testing.T) {
	if s := Y1Q2.String(); s != "[4/Y1, 7/Y1)" {
		t.Fatalf("Y1Q2.String() = %q", s)
	}
}
