package stats

import "math"

// Zipf samples from a Zipf-Mandelbrot distribution over {0, 1, ..., n-1}
// with exponent s > 1 and offset v >= 1, using the rejection method of
// Hörmann & Derflinger (the same algorithm as math/rand.Zipf, reimplemented
// here against our deterministic RNG).
type Zipf struct {
	rng          *RNG
	imax         float64
	v            float64
	q            float64
	oneminusQ    float64
	oneminusQinv float64
	hxm          float64
	hx0minusHxm  float64
	s            float64
}

// NewZipf returns a Zipf sampler. It panics if s <= 1, v < 1, or n == 0.
func NewZipf(rng *RNG, s, v float64, n uint64) *Zipf {
	if s <= 1.0 || v < 1 || n == 0 {
		panic("stats: invalid Zipf parameters")
	}
	z := &Zipf{rng: rng, imax: float64(n - 1), v: v, q: s}
	z.oneminusQ = 1.0 - z.q
	z.oneminusQinv = 1.0 / z.oneminusQ
	z.hxm = z.h(z.imax + 0.5)
	z.hx0minusHxm = z.h(0.5) - math.Exp(math.Log(z.v)*(-z.q)) - z.hxm
	z.s = 1 - z.hinv(z.h(1.5)-math.Exp(-z.q*math.Log(z.v+1.0)))
	return z
}

// RNG exposes the sampler's generator so checkpointing can capture and
// restore its stream position; the other fields are pure functions of the
// NewZipf parameters.
func (z *Zipf) RNG() *RNG { return z.rng }

func (z *Zipf) h(x float64) float64 {
	return math.Exp(z.oneminusQ*math.Log(z.v+x)) * z.oneminusQinv
}

func (z *Zipf) hinv(x float64) float64 {
	return math.Exp(z.oneminusQinv*math.Log(z.oneminusQ*x)) - z.v
}

// Uint64 draws the next Zipf deviate.
func (z *Zipf) Uint64() uint64 {
	for {
		r := z.rng.Float64()
		ur := z.hxm + r*z.hx0minusHxm
		x := z.hinv(ur)
		k := math.Floor(x + 0.5)
		if k-x <= z.s {
			return uint64(k)
		}
		if ur >= z.h(k+0.5)-math.Exp(-math.Log(k+z.v)*z.q) {
			return uint64(k)
		}
	}
}

// LogNormal samples exp(N(mu, sigma)). Heavy-tailed; used for advertiser
// budgets, bid levels, and per-advertiser traffic scale.
type LogNormal struct {
	rng   *RNG
	Mu    float64
	Sigma float64
}

// NewLogNormal returns a lognormal sampler.
func NewLogNormal(rng *RNG, mu, sigma float64) *LogNormal {
	return &LogNormal{rng: rng, Mu: mu, Sigma: sigma}
}

// RNG exposes the sampler's generator for checkpointing.
func (l *LogNormal) RNG() *RNG { return l.rng }

// Sample draws the next lognormal deviate.
func (l *LogNormal) Sample() float64 {
	return math.Exp(l.Mu + l.Sigma*l.rng.NormFloat64())
}

// Pareto samples a Pareto(xm, alpha) deviate: xm * U^(-1/alpha).
func Pareto(rng *RNG, xm, alpha float64) float64 {
	for {
		u := rng.Float64()
		if u > 0 {
			return xm * math.Pow(u, -1/alpha)
		}
	}
}

// Exponential samples an exponential deviate with the given mean.
func Exponential(rng *RNG, mean float64) float64 {
	return mean * rng.ExpFloat64()
}

// Gamma samples a Gamma(shape, scale) deviate via Marsaglia–Tsang
// squeeze (shape >= 1) with the standard boost for shape < 1. Shapes
// below 1 give the over-dispersed, bursty inter-arrival gaps the load
// generator uses for clumped traffic. Panics on non-positive shape.
func Gamma(rng *RNG, shape, scale float64) float64 {
	if shape <= 0 {
		panic("stats: Gamma with non-positive shape")
	}
	if shape < 1 {
		// Gamma(k) = Gamma(k+1) * U^(1/k).
		for {
			u := rng.Float64()
			if u > 0 {
				return Gamma(rng, shape+1, scale) * math.Pow(u, 1/shape)
			}
		}
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9.0*d)
	for {
		x := rng.NormFloat64()
		v := 1.0 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1.0-0.0331*x*x*x*x {
			return scale * d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1.0-v+math.Log(v)) {
			return scale * d * v
		}
	}
}

// Weibull samples a Weibull(shape, scale) deviate by inversion. Shape
// < 1 yields heavy-tailed gaps (long lulls punctuated by bursts); shape
// > 1 regularizes toward periodic arrivals. Panics on non-positive
// parameters.
func Weibull(rng *RNG, shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("stats: Weibull with non-positive parameters")
	}
	return scale * math.Pow(rng.ExpFloat64(), 1/shape)
}

// Poisson samples a Poisson(lambda) deviate. Knuth's method is used for
// small lambda and a normal approximation (rounded, clamped at zero) for
// large lambda, which is accurate enough for arrival counts at scale.
func Poisson(rng *RNG, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		l := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= rng.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	n := lambda + math.Sqrt(lambda)*rng.NormFloat64()
	if n < 0 {
		return 0
	}
	return int(n + 0.5)
}

// Geometric samples the number of failures before the first success for a
// Bernoulli(p) process. Returns 0 immediately when p >= 1.
func Geometric(rng *RNG, p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		panic("stats: Geometric with non-positive p")
	}
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return int(math.Log(u) / math.Log(1-p))
}

// Categorical draws an index in [0, len(weights)) with probability
// proportional to weights[i]. It panics if all weights are zero or any is
// negative.
func Categorical(rng *RNG, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("stats: negative categorical weight")
		}
		total += w
	}
	if total <= 0 {
		panic("stats: categorical weights sum to zero")
	}
	x := rng.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
