package stats

import (
	"math"
	"testing"
)

func TestZipfBounds(t *testing.T) {
	z := NewZipf(NewRNG(1), 1.5, 1, 100)
	for i := 0; i < 10000; i++ {
		if v := z.Uint64(); v >= 100 {
			t.Fatalf("Zipf value %d out of range", v)
		}
	}
}

func TestZipfMonotoneHead(t *testing.T) {
	// Rank 0 must be sampled more often than rank 10, which must beat
	// rank 100.
	z := NewZipf(NewRNG(2), 1.3, 1, 1000)
	counts := make([]int, 1000)
	for i := 0; i < 200000; i++ {
		counts[z.Uint64()]++
	}
	if !(counts[0] > counts[10] && counts[10] > counts[100]) {
		t.Fatalf("Zipf head not monotone: c0=%d c10=%d c100=%d", counts[0], counts[10], counts[100])
	}
}

func TestZipfSkewEffect(t *testing.T) {
	// Higher s concentrates more mass at rank 0.
	head := func(s float64) float64 {
		z := NewZipf(NewRNG(3), s, 1, 500)
		hits := 0
		const n = 50000
		for i := 0; i < n; i++ {
			if z.Uint64() == 0 {
				hits++
			}
		}
		return float64(hits) / n
	}
	if low, high := head(1.2), head(2.5); low >= high {
		t.Fatalf("head mass did not grow with skew: s=1.2 -> %v, s=2.5 -> %v", low, high)
	}
}

func TestZipfInvalidParamsPanic(t *testing.T) {
	for _, c := range []struct{ s, v float64 }{{1.0, 1}, {0.5, 1}, {2, 0.5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewZipf(%v, %v) did not panic", c.s, c.v)
				}
			}()
			NewZipf(NewRNG(1), c.s, c.v, 10)
		}()
	}
}

func TestLogNormalMedian(t *testing.T) {
	ln := NewLogNormal(NewRNG(4), math.Log(10), 0.8)
	vals := make([]float64, 50000)
	for i := range vals {
		vals[i] = ln.Sample()
	}
	med := Median(vals)
	if med < 9 || med > 11 {
		t.Fatalf("lognormal median %v, want ~10", med)
	}
}

func TestParetoTail(t *testing.T) {
	rng := NewRNG(5)
	for i := 0; i < 10000; i++ {
		if v := Pareto(rng, 2, 1.5); v < 2 {
			t.Fatalf("Pareto below xm: %v", v)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	rng := NewRNG(6)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += Exponential(rng, 5)
	}
	if mean := sum / n; math.Abs(mean-5) > 0.15 {
		t.Fatalf("exponential mean %v, want ~5", mean)
	}
}

func TestPoissonMean(t *testing.T) {
	rng := NewRNG(7)
	for _, lambda := range []float64{0.5, 3, 20, 100} {
		sum := 0
		const n = 50000
		for i := 0; i < n; i++ {
			sum += Poisson(rng, lambda)
		}
		mean := float64(sum) / n
		if math.Abs(mean-lambda) > lambda*0.05+0.05 {
			t.Fatalf("Poisson(%v) mean %v", lambda, mean)
		}
	}
}

func TestPoissonNonNegative(t *testing.T) {
	rng := NewRNG(8)
	if Poisson(rng, 0) != 0 || Poisson(rng, -1) != 0 {
		t.Fatal("Poisson of non-positive lambda must be 0")
	}
}

func TestGeometricMean(t *testing.T) {
	rng := NewRNG(9)
	p := 0.25
	sum := 0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += Geometric(rng, p)
	}
	mean := float64(sum) / n
	want := (1 - p) / p
	if math.Abs(mean-want) > 0.1 {
		t.Fatalf("Geometric(%v) mean %v, want %v", p, mean, want)
	}
}

func TestGeometricEdge(t *testing.T) {
	if Geometric(NewRNG(1), 1) != 0 {
		t.Fatal("Geometric(p=1) must be 0")
	}
}

func TestCategoricalDistribution(t *testing.T) {
	rng := NewRNG(10)
	w := []float64{1, 2, 7}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[Categorical(rng, w)]++
	}
	for i, want := range []float64{0.1, 0.2, 0.7} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("Categorical bucket %d: %v, want %v", i, got, want)
		}
	}
}

func TestCategoricalZeroWeightNeverChosen(t *testing.T) {
	rng := NewRNG(11)
	w := []float64{0, 1, 0}
	for i := 0; i < 1000; i++ {
		if Categorical(rng, w) != 1 {
			t.Fatal("zero-weight bucket chosen")
		}
	}
}

func TestCategoricalPanics(t *testing.T) {
	for _, w := range [][]float64{{0, 0}, {-1, 2}, {}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Categorical(%v) did not panic", w)
				}
			}()
			Categorical(NewRNG(1), w)
		}()
	}
}
