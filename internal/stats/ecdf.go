package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// ECDF is an empirical cumulative distribution function over float64
// samples. Construct with NewECDF; the sample set is sorted once and the
// type is immutable afterwards, so it is safe for concurrent reads.
type ECDF struct {
	xs []float64 // sorted
}

// NewECDF builds an ECDF from values. NaNs are dropped. The input slice is
// not retained.
func NewECDF(values []float64) *ECDF {
	xs := make([]float64, 0, len(values))
	for _, v := range values {
		if !math.IsNaN(v) {
			xs = append(xs, v)
		}
	}
	sort.Float64s(xs)
	return &ECDF{xs: xs}
}

// N returns the number of samples.
func (e *ECDF) N() int { return len(e.xs) }

// Min returns the smallest sample, or 0 for an empty ECDF.
func (e *ECDF) Min() float64 {
	if len(e.xs) == 0 {
		return 0
	}
	return e.xs[0]
}

// Max returns the largest sample, or 0 for an empty ECDF.
func (e *ECDF) Max() float64 {
	if len(e.xs) == 0 {
		return 0
	}
	return e.xs[len(e.xs)-1]
}

// At returns P(X <= x).
func (e *ECDF) At(x float64) float64 {
	if len(e.xs) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(e.xs, x)
	// Advance past duplicates equal to x: SearchFloat64s returns the first
	// index with xs[i] >= x; we need the count of samples <= x.
	for i < len(e.xs) && e.xs[i] == x {
		i++
	}
	return float64(i) / float64(len(e.xs))
}

// Quantile returns the q-quantile for q in [0, 1] using the nearest-rank
// method. It returns 0 for an empty ECDF.
func (e *ECDF) Quantile(q float64) float64 {
	if len(e.xs) == 0 {
		return 0
	}
	if q <= 0 {
		return e.xs[0]
	}
	if q >= 1 {
		return e.xs[len(e.xs)-1]
	}
	i := int(math.Ceil(q*float64(len(e.xs)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(e.xs) {
		i = len(e.xs) - 1
	}
	return e.xs[i]
}

// Median returns the 0.5-quantile.
func (e *ECDF) Median() float64 { return e.Quantile(0.5) }

// Mean returns the sample mean, or 0 for an empty ECDF.
func (e *ECDF) Mean() float64 {
	if len(e.xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range e.xs {
		s += x
	}
	return s / float64(len(e.xs))
}

// Points samples the ECDF at n evenly spaced cumulative probabilities and
// returns (x, p) pairs suitable for plotting a CDF curve.
func (e *ECDF) Points(n int) []Point {
	if n <= 0 || len(e.xs) == 0 {
		return nil
	}
	pts := make([]Point, 0, n)
	for i := 1; i <= n; i++ {
		p := float64(i) / float64(n)
		pts = append(pts, Point{X: e.Quantile(p), Y: p})
	}
	return pts
}

// Point is an (x, y) pair in a rendered series.
type Point struct {
	X, Y float64
}

// Table formats selected quantiles of the ECDF as an aligned text block,
// one row per requested quantile.
func (e *ECDF) Table(quantiles ...float64) string {
	var b strings.Builder
	for _, q := range quantiles {
		fmt.Fprintf(&b, "p%02.0f %12.4g\n", q*100, e.Quantile(q))
	}
	return b.String()
}

// Values returns a copy of the sorted sample set.
func (e *ECDF) Values() []float64 {
	out := make([]float64, len(e.xs))
	copy(out, e.xs)
	return out
}

// KolmogorovDistance returns the Kolmogorov–Smirnov statistic
// sup_x |F1(x) - F2(x)| between two ECDFs, a convenient scalar for tests
// asserting that two distributions are (dis)similar.
func KolmogorovDistance(a, b *ECDF) float64 {
	if a.N() == 0 || b.N() == 0 {
		return 0
	}
	d := 0.0
	for _, x := range a.xs {
		if v := math.Abs(a.At(x) - b.At(x)); v > d {
			d = v
		}
	}
	for _, x := range b.xs {
		if v := math.Abs(a.At(x) - b.At(x)); v > d {
			d = v
		}
	}
	return d
}
