package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestECDFBasics(t *testing.T) {
	e := NewECDF([]float64{3, 1, 2})
	if e.N() != 3 {
		t.Fatalf("N = %d", e.N())
	}
	if e.Min() != 1 || e.Max() != 3 {
		t.Fatalf("min/max = %v/%v", e.Min(), e.Max())
	}
	if got := e.At(0.5); got != 0 {
		t.Fatalf("At(0.5) = %v", got)
	}
	if got := e.At(2); got != 2.0/3 {
		t.Fatalf("At(2) = %v", got)
	}
	if got := e.At(10); got != 1 {
		t.Fatalf("At(10) = %v", got)
	}
}

func TestECDFDropsNaN(t *testing.T) {
	e := NewECDF([]float64{1, math.NaN(), 2})
	if e.N() != 2 {
		t.Fatalf("NaN not dropped: N=%d", e.N())
	}
}

func TestECDFEmpty(t *testing.T) {
	e := NewECDF(nil)
	if e.N() != 0 || e.Median() != 0 || e.At(1) != 0 || e.Mean() != 0 {
		t.Fatal("empty ECDF should return zeros")
	}
}

func TestECDFQuantileNearestRank(t *testing.T) {
	e := NewECDF([]float64{10, 20, 30, 40})
	cases := map[float64]float64{0: 10, 0.25: 10, 0.5: 20, 0.75: 30, 1: 40, 0.51: 30}
	for q, want := range cases {
		if got := e.Quantile(q); got != want {
			t.Fatalf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
}

func TestECDFMonotoneProperty(t *testing.T) {
	// CDF must be non-decreasing and quantiles must invert consistently.
	f := func(raw []float64) bool {
		var vals []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		e := NewECDF(vals)
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		prev := 0.0
		for _, x := range sorted {
			p := e.At(x)
			if p < prev {
				return false
			}
			prev = p
		}
		// Quantile at the CDF of any value must be >= that value's rank
		// predecessor.
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := e.Quantile(q)
			if e.At(v) < q-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestECDFMean(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4})
	if e.Mean() != 2.5 {
		t.Fatalf("mean %v", e.Mean())
	}
}

func TestECDFPoints(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4, 5})
	pts := e.Points(5)
	if len(pts) != 5 {
		t.Fatalf("Points(5) len %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Y < pts[i-1].Y || pts[i].X < pts[i-1].X {
			t.Fatalf("points not monotone: %v", pts)
		}
	}
	if pts[4].Y != 1 || pts[4].X != 5 {
		t.Fatalf("last point %v", pts[4])
	}
}

func TestECDFValuesCopy(t *testing.T) {
	e := NewECDF([]float64{2, 1})
	v := e.Values()
	v[0] = 99
	if e.Min() == 99 {
		t.Fatal("Values returned internal storage")
	}
}

func TestKolmogorovDistance(t *testing.T) {
	a := NewECDF([]float64{1, 2, 3})
	if d := KolmogorovDistance(a, a); d != 0 {
		t.Fatalf("self-distance %v", d)
	}
	b := NewECDF([]float64{100, 200, 300})
	if d := KolmogorovDistance(a, b); d != 1 {
		t.Fatalf("disjoint distance %v, want 1", d)
	}
	c := NewECDF([]float64{1, 2, 300})
	d := KolmogorovDistance(a, c)
	if d <= 0 || d >= 1 {
		t.Fatalf("partial overlap distance %v", d)
	}
}

func TestECDFTableRendering(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4})
	s := e.Table(0.5, 0.9)
	if s == "" {
		t.Fatal("empty table")
	}
}
