package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-bin histogram over float64 observations. Bins may be
// linear or logarithmic depending on the constructor. Out-of-range
// observations are counted in the underflow/overflow buckets.
type Histogram struct {
	edges     []float64 // len = bins+1, ascending
	counts    []uint64  // len = bins
	underflow uint64
	overflow  uint64
	total     uint64
	log       bool
}

// NewLinearHistogram returns a histogram with `bins` equal-width bins over
// [lo, hi). It panics on a non-positive bin count or an empty range.
func NewLinearHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || !(hi > lo) {
		panic("stats: invalid linear histogram parameters")
	}
	edges := make([]float64, bins+1)
	w := (hi - lo) / float64(bins)
	for i := range edges {
		edges[i] = lo + float64(i)*w
	}
	return &Histogram{edges: edges, counts: make([]uint64, bins)}
}

// NewLogHistogram returns a histogram with `bins` log-spaced bins over
// [lo, hi), lo > 0. Log-spaced bins match the log-x axes used throughout
// the paper's figures (impression rates, bids, CPCs).
func NewLogHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || !(hi > lo) || lo <= 0 {
		panic("stats: invalid log histogram parameters")
	}
	edges := make([]float64, bins+1)
	llo, lhi := math.Log(lo), math.Log(hi)
	w := (lhi - llo) / float64(bins)
	for i := range edges {
		edges[i] = math.Exp(llo + float64(i)*w)
	}
	return &Histogram{edges: edges, counts: make([]uint64, bins), log: true}
}

// Observe adds a single observation.
func (h *Histogram) Observe(x float64) {
	h.total++
	if x < h.edges[0] {
		h.underflow++
		return
	}
	if x >= h.edges[len(h.edges)-1] {
		h.overflow++
		return
	}
	// Binary search for the bin.
	lo, hi := 0, len(h.counts)
	for lo < hi {
		mid := (lo + hi) / 2
		if x >= h.edges[mid+1] {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo]++
}

// Count returns the total number of observations, including under/overflow.
func (h *Histogram) Count() uint64 { return h.total }

// Bin returns the [lo, hi) edges and count of bin i.
func (h *Histogram) Bin(i int) (lo, hi float64, count uint64) {
	return h.edges[i], h.edges[i+1], h.counts[i]
}

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.counts) }

// Render draws a simple ASCII bar chart of the histogram, width characters
// wide, for human inspection in the experiment reports.
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 50
	}
	var max uint64
	for _, c := range h.counts {
		if c > max {
			max = c
		}
	}
	var b strings.Builder
	for i, c := range h.counts {
		barLen := 0
		if max > 0 {
			barLen = int(float64(c) / float64(max) * float64(width))
		}
		fmt.Fprintf(&b, "%12.4g %s %d\n", h.edges[i], strings.Repeat("#", barLen), c)
	}
	if h.underflow > 0 {
		fmt.Fprintf(&b, "   underflow %d\n", h.underflow)
	}
	if h.overflow > 0 {
		fmt.Fprintf(&b, "    overflow %d\n", h.overflow)
	}
	return b.String()
}
