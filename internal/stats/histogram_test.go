package stats

import (
	"strings"
	"testing"
)

func TestLinearHistogram(t *testing.T) {
	h := NewLinearHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Observe(float64(i) + 0.5)
	}
	for i := 0; i < h.Bins(); i++ {
		lo, hi, c := h.Bin(i)
		if c != 1 {
			t.Fatalf("bin %d [%v,%v) count %d", i, lo, hi, c)
		}
	}
	if h.Count() != 10 {
		t.Fatalf("count %d", h.Count())
	}
}

func TestHistogramOverUnderflow(t *testing.T) {
	h := NewLinearHistogram(0, 10, 5)
	h.Observe(-1)
	h.Observe(10) // upper edge is exclusive: overflow
	h.Observe(11)
	if h.Count() != 3 {
		t.Fatalf("count %d", h.Count())
	}
	var inBins uint64
	for i := 0; i < h.Bins(); i++ {
		_, _, c := h.Bin(i)
		inBins += c
	}
	if inBins != 0 {
		t.Fatalf("in-bin count %d, want 0", inBins)
	}
	r := h.Render(20)
	if !strings.Contains(r, "underflow 1") || !strings.Contains(r, "overflow 2") {
		t.Fatalf("render missing flows:\n%s", r)
	}
}

func TestLogHistogramEdges(t *testing.T) {
	h := NewLogHistogram(1, 1000, 3)
	// Bins: [1,10), [10,100), [100,1000).
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)
	for i := 0; i < 3; i++ {
		if _, _, c := h.Bin(i); c != 1 {
			t.Fatalf("log bin %d count %d", i, c)
		}
	}
	lo, hi, _ := h.Bin(1)
	if lo < 9.99 || lo > 10.01 || hi < 99.9 || hi > 100.1 {
		t.Fatalf("log bin 1 edges [%v, %v)", lo, hi)
	}
}

func TestHistogramBoundaryBelongsToUpperBin(t *testing.T) {
	h := NewLinearHistogram(0, 10, 10)
	h.Observe(3) // exactly on the edge between bin 2 and bin 3
	if _, _, c := h.Bin(3); c != 1 {
		t.Fatal("edge observation not in upper bin")
	}
	if _, _, c := h.Bin(2); c != 0 {
		t.Fatal("edge observation leaked into lower bin")
	}
}

func TestHistogramInvalidParamsPanic(t *testing.T) {
	cases := []func(){
		func() { NewLinearHistogram(0, 10, 0) },
		func() { NewLinearHistogram(5, 5, 3) },
		func() { NewLogHistogram(0, 10, 3) },
		func() { NewLogHistogram(10, 1, 3) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}
