// Package stats provides the statistical substrate for the advertiser-fraud
// simulator and measurement library: a deterministic, forkable random number
// generator, heavy-tailed distribution samplers, empirical CDFs, quantiles,
// histograms, weighted sampling without replacement, and the matched-subset
// selection machinery described in §3.3 of the paper.
//
// All randomness in the repository flows through RNG so that a simulation is
// fully reproducible from a single seed. RNG is not safe for concurrent use;
// concurrent components each Fork their own stream.
package stats

import (
	"math"
	"math/bits"
)

// RNG is a small, fast, deterministic random number generator
// (xoshiro256**), seeded via splitmix64 so that any uint64 — including 0 —
// is a valid seed. The zero value is not useful; construct with NewRNG.
type RNG struct {
	s [4]uint64
}

// RNGState is the exported form of an RNG's internal state, used by the
// checkpoint layer to serialize and later restore a stream mid-sequence.
type RNGState [4]uint64

// State returns the generator's current state. Restoring it with
// SetState resumes the stream at exactly the same point.
func (r *RNG) State() RNGState { return RNGState(r.s) }

// SetState overwrites the generator's state with one previously captured
// by State.
func (r *RNG) SetState(st RNGState) { r.s = [4]uint64(st) }

// NewRNG returns a generator deterministically derived from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// splitmix64 expansion of the seed into the 256-bit state.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Fork derives an independent child generator. The child's stream is a pure
// function of the parent's state at the time of the call, so forking in a
// fixed order preserves determinism while decoupling component streams.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64() ^ 0xd1b54a32d192ed03)
}

// ForkNamed derives a child generator whose stream depends on both the
// parent state and a label, so that adding a new named consumer does not
// perturb the streams of existing ones.
func (r *RNG) ForkNamed(name string) *RNG {
	h := uint64(14695981039346656037) // FNV-1a offset basis
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return NewRNG(r.peek() ^ h)
}

// peek mixes the current state without advancing it.
func (r *RNG) peek() uint64 {
	return r.s[0] ^ r.s[1] ^ r.s[2] ^ r.s[3]
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns a uniformly distributed 64-bit value.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("stats: Uint64n with zero n")
	}
	for {
		hi, lo := bits.Mul64(r.Uint64(), n)
		if lo >= -n%n {
			return hi
		}
	}
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Range returns a uniform value in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// NormFloat64 returns a standard normal deviate via the Marsaglia polar
// method (allocation-free, no cached spare to keep Fork semantics simple).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential deviate with rate 1 (mean 1).
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
