package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedSensitivity(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical values", same)
	}
}

func TestRNGZeroSeedWorks(t *testing.T) {
	r := NewRNG(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("zero seed generator produced only %d distinct values", len(seen))
	}
}

func TestForkIndependence(t *testing.T) {
	parent := NewRNG(7)
	c1 := parent.Fork()
	c2 := parent.Fork()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling forks produced identical first values")
	}
}

func TestForkNamedStable(t *testing.T) {
	a := NewRNG(7).ForkNamed("alpha")
	b := NewRNG(7).ForkNamed("alpha")
	if a.Uint64() != b.Uint64() {
		t.Fatal("same-named forks from same seed differ")
	}
	c := NewRNG(7).ForkNamed("beta")
	d := NewRNG(7).ForkNamed("alpha")
	if c.Uint64() == d.Uint64() {
		t.Fatal("different names produced identical streams")
	}
}

func TestForkNamedDoesNotAdvanceParent(t *testing.T) {
	a := NewRNG(9)
	b := NewRNG(9)
	a.ForkNamed("x")
	if a.Uint64() != b.Uint64() {
		t.Fatal("ForkNamed advanced the parent stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(4)
	sum := 0.0
	n := 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(5)
	if err := quick.Check(func(n uint16) bool {
		nn := int(n%1000) + 1
		v := r.Intn(nn)
		return v >= 0 && v < nn
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	r := NewRNG(6)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Uint64n(n)]++
	}
	want := trials / n
	for i, c := range counts {
		if math.Abs(float64(c-want)) > float64(want)/10 {
			t.Fatalf("bucket %d: %d, want ~%d", i, c, want)
		}
	}
}

func TestBoolEdges(t *testing.T) {
	r := NewRNG(8)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(9)
	hits := 0
	n := 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / float64(n)
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) rate %v", p)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(10)
	n := 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	n := 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / float64(n); math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean %v", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(12)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := NewRNG(13)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum2 := 0
	for _, x := range xs {
		sum2 += x
	}
	if sum != sum2 {
		t.Fatalf("shuffle changed contents: %v", xs)
	}
}

func TestRangeBounds(t *testing.T) {
	r := NewRNG(14)
	for i := 0; i < 1000; i++ {
		v := r.Range(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Range out of bounds: %v", v)
		}
	}
}
