package stats

import (
	"container/heap"
	"math"
	"sort"
)

// SampleUniform returns k indices drawn uniformly without replacement from
// [0, n). If k >= n it returns all n indices. The result is in random order.
func SampleUniform(rng *RNG, n, k int) []int {
	if k >= n {
		return rng.Perm(n)
	}
	// Partial Fisher-Yates over an index map keeps this O(k) in space.
	chosen := make(map[int]int, k)
	out := make([]int, k)
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		vj, ok := chosen[j]
		if !ok {
			vj = j
		}
		vi, ok := chosen[i]
		if !ok {
			vi = i
		}
		out[i] = vj
		chosen[j] = vi
	}
	return out
}

// weightedItem pairs an index with its exponential sort key for A-ES
// weighted reservoir sampling.
type weightedItem struct {
	idx int
	key float64
}

type weightedHeap []weightedItem

func (h weightedHeap) Len() int            { return len(h) }
func (h weightedHeap) Less(i, j int) bool  { return h[i].key < h[j].key }
func (h weightedHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *weightedHeap) Push(x interface{}) { *h = append(*h, x.(weightedItem)) }
func (h *weightedHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// SampleWeighted returns up to k indices drawn without replacement from
// [0, len(weights)) with inclusion probability proportional to weight
// (Efraimidis–Spirakis A-ES). Zero-weight items are never selected. This is
// the primitive behind the paper's spend-weighted and volume-weighted
// advertiser subsets (§3.3.1).
func SampleWeighted(rng *RNG, weights []float64, k int) []int {
	if k <= 0 {
		return nil
	}
	h := make(weightedHeap, 0, k)
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		// key = U^(1/w); keep the k largest keys. Use log for stability:
		// log key = log(U)/w, ordering is preserved.
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		key := math.Log(u) / w
		if len(h) < k {
			heap.Push(&h, weightedItem{idx: i, key: key})
		} else if key > h[0].key {
			h[0] = weightedItem{idx: i, key: key}
			heap.Fix(&h, 0)
		}
	}
	out := make([]int, len(h))
	for i, it := range h {
		out[i] = it.idx
	}
	return out
}

// MatchNearest selects, for each target value, the index of the candidate
// whose value is closest to it, without reusing candidates. Both inputs may
// be unsorted. Matching is greedy over targets in ascending value order
// using a two-pointer sweep, which is optimal for one-dimensional matching
// under absolute-difference cost when candidates outnumber targets.
//
// The returned slice is parallel to targets; an entry is -1 when the
// candidate pool is exhausted. This implements the paper's 'NF spend
// match', 'NF volume match' and 'NF rate match' subset construction
// (§3.3.2): non-fraudulent advertisers chosen to minimize the difference
// between their metric and a matched fraudulent advertiser's metric.
func MatchNearest(targets, candidates []float64) []int {
	type iv struct {
		idx int
		v   float64
	}
	ts := make([]iv, len(targets))
	for i, v := range targets {
		ts[i] = iv{i, v}
	}
	cs := make([]iv, len(candidates))
	for i, v := range candidates {
		cs[i] = iv{i, v}
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].v < ts[j].v })
	sort.Slice(cs, func(i, j int) bool { return cs[i].v < cs[j].v })

	out := make([]int, len(targets))
	for i := range out {
		out[i] = -1
	}
	used := make([]bool, len(cs))
	lo := 0
	for _, t := range ts {
		// Advance lo past used candidates.
		for lo < len(cs) && used[lo] {
			lo++
		}
		if lo >= len(cs) {
			break
		}
		// Binary search for the insertion point, then scan outwards for the
		// nearest unused candidate.
		j := sort.Search(len(cs), func(k int) bool { return cs[k].v >= t.v })
		best := -1
		bestD := math.Inf(1)
		for l := j; l < len(cs); l++ {
			if used[l] {
				continue
			}
			d := math.Abs(cs[l].v - t.v)
			if d < bestD {
				best, bestD = l, d
			}
			break // sorted: the first unused at or above t.v is the closest above
		}
		for l := j - 1; l >= lo; l-- {
			if used[l] {
				continue
			}
			d := math.Abs(cs[l].v - t.v)
			if d < bestD {
				best, bestD = l, d
			}
			break // first unused below is the closest below
		}
		if best >= 0 {
			used[best] = true
			out[t.idx] = cs[best].idx
		}
	}
	return out
}
