package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSampleUniformDistinct(t *testing.T) {
	rng := NewRNG(1)
	f := func(n8, k8 uint8) bool {
		n := int(n8%200) + 1
		k := int(k8 % 220)
		got := SampleUniform(rng, n, k)
		wantLen := k
		if k >= n {
			wantLen = n
		}
		if len(got) != wantLen {
			return false
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleUniformUnbiased(t *testing.T) {
	rng := NewRNG(2)
	counts := make([]int, 10)
	const trials = 50000
	for i := 0; i < trials; i++ {
		for _, v := range SampleUniform(rng, 10, 3) {
			counts[v]++
		}
	}
	want := trials * 3 / 10
	for i, c := range counts {
		if math.Abs(float64(c-want)) > float64(want)/10 {
			t.Fatalf("index %d drawn %d times, want ~%d", i, c, want)
		}
	}
}

func TestSampleWeightedRespectsWeights(t *testing.T) {
	rng := NewRNG(3)
	w := []float64{1, 0, 10}
	counts := make([]int, 3)
	const trials = 20000
	for i := 0; i < trials; i++ {
		got := SampleWeighted(rng, w, 1)
		if len(got) != 1 {
			t.Fatalf("k=1 returned %d items", len(got))
		}
		counts[got[0]]++
	}
	if counts[1] != 0 {
		t.Fatal("zero-weight item selected")
	}
	if counts[2] < counts[0]*5 {
		t.Fatalf("weight-10 item not dominant: %v", counts)
	}
}

func TestSampleWeightedWithoutReplacement(t *testing.T) {
	rng := NewRNG(4)
	w := []float64{1, 2, 3, 4, 5}
	got := SampleWeighted(rng, w, 3)
	if len(got) != 3 {
		t.Fatalf("len %d", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if seen[v] {
			t.Fatalf("duplicate %d", v)
		}
		seen[v] = true
	}
}

func TestSampleWeightedAllZeroOrK(t *testing.T) {
	rng := NewRNG(5)
	if got := SampleWeighted(rng, []float64{0, 0}, 3); len(got) != 0 {
		t.Fatalf("all-zero weights returned %v", got)
	}
	if got := SampleWeighted(rng, []float64{1, 1}, 0); got != nil {
		t.Fatalf("k=0 returned %v", got)
	}
	if got := SampleWeighted(rng, []float64{1, 1}, 5); len(got) != 2 {
		t.Fatalf("k>n returned %d items", len(got))
	}
}

func TestMatchNearestExact(t *testing.T) {
	targets := []float64{5, 1, 9}
	cands := []float64{1, 5, 9, 100}
	m := MatchNearest(targets, cands)
	if cands[m[0]] != 5 || cands[m[1]] != 1 || cands[m[2]] != 9 {
		t.Fatalf("exact matching failed: %v", m)
	}
}

func TestMatchNearestNoReuse(t *testing.T) {
	targets := []float64{10, 10, 10}
	cands := []float64{10, 11, 12}
	m := MatchNearest(targets, cands)
	seen := map[int]bool{}
	for _, ci := range m {
		if ci < 0 {
			t.Fatalf("unmatched target with candidates remaining: %v", m)
		}
		if seen[ci] {
			t.Fatalf("candidate reused: %v", m)
		}
		seen[ci] = true
	}
}

func TestMatchNearestExhaustion(t *testing.T) {
	targets := []float64{1, 2, 3}
	cands := []float64{2}
	m := MatchNearest(targets, cands)
	matched := 0
	for _, ci := range m {
		if ci >= 0 {
			matched++
		}
	}
	if matched != 1 {
		t.Fatalf("want exactly 1 match, got %d (%v)", matched, m)
	}
}

func TestMatchNearestEmpty(t *testing.T) {
	if m := MatchNearest(nil, []float64{1}); len(m) != 0 {
		t.Fatalf("nil targets: %v", m)
	}
	m := MatchNearest([]float64{1}, nil)
	if len(m) != 1 || m[0] != -1 {
		t.Fatalf("nil candidates: %v", m)
	}
}

func TestMatchNearestQualityProperty(t *testing.T) {
	// With candidates ⊇ targets (as multisets), every target must match a
	// candidate of identical value.
	rng := NewRNG(6)
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(50)
		targets := make([]float64, n)
		cands := make([]float64, 0, n*2)
		for i := range targets {
			targets[i] = float64(rng.Intn(20))
			cands = append(cands, targets[i])
		}
		for i := 0; i < n; i++ {
			cands = append(cands, float64(rng.Intn(20)))
		}
		m := MatchNearest(targets, cands)
		for ti, ci := range m {
			if ci < 0 || cands[ci] != targets[ti] {
				t.Fatalf("trial %d: target %v matched %v", trial, targets[ti], cands[ci])
			}
		}
	}
}
