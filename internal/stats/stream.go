package stats

// Substream derivation for deterministic parallel consumption of one
// sequential RNG stream.
//
// The serving loop's click stream is a single sequential generator: query
// i's rolls are drawn right after query i-1's. To serve queries on
// several workers while keeping every roll bit-identical to the
// sequential engine, the master stream is partitioned by draw count: once
// the number of draws each consumer will make is known, SubStreams walks
// the master generator once, recording the state at each consumer's
// start position. Each worker then restores its consumer states into a
// private generator and draws independently — the exact values the
// sequential engine would have produced, regardless of which worker
// serves which consumer.

// SubStreams captures, for each consumer i, the master generator's state
// immediately before consumer i's draws[i] Uint64 draws, then advances
// the master past them. States are appended to dst (a reusable scratch;
// pass dst[:0] to reuse its storage) and the extended slice is returned.
//
// After the call the master has advanced by exactly sum(draws) draws —
// the same position sequential consumption would have left it in, so
// checkpoints and later consumers of the master stream are unaffected by
// the partitioning.
func SubStreams(master *RNG, draws []int32, dst []RNGState) []RNGState {
	for _, n := range draws {
		dst = append(dst, master.State())
		for j := int32(0); j < n; j++ {
			master.Uint64()
		}
	}
	return dst
}
