package stats

import "testing"

// FuzzSubStreams fuzzes the partitioning contract the parallel serving
// loop stands on: for any seed and any draw-count vector, (1) replaying
// each captured substream for its declared draw count reproduces the
// master stream's values bit for bit, and (2) the master lands on
// exactly the state sequential consumption would have left it in — so
// checkpoints and later consumers never see the partitioning. Draw
// counts are decoded one per input byte (mod 17, so zero-draw consumers
// stay common — the edge the serving loop hits on empty result pages).
func FuzzSubStreams(f *testing.F) {
	f.Add(uint64(1234), []byte{0, 3, 1, 0, 0, 7, 2, 0, 5})
	f.Add(uint64(0), []byte{})
	f.Add(uint64(7), []byte{0, 0, 0})
	f.Add(uint64(1<<63), []byte{16, 16, 16, 1})
	f.Fuzz(func(t *testing.T, seed uint64, raw []byte) {
		if len(raw) > 256 {
			raw = raw[:256]
		}
		draws := make([]int32, len(raw))
		for i, b := range raw {
			draws[i] = int32(b % 17)
		}

		seq := NewRNG(seed)
		var want []uint64
		for _, n := range draws {
			for j := int32(0); j < n; j++ {
				want = append(want, seq.Uint64())
			}
		}

		master := NewRNG(seed)
		states := SubStreams(master, draws, nil)
		if len(states) != len(draws) {
			t.Fatalf("got %d states for %d consumers", len(states), len(draws))
		}
		if master.State() != seq.State() {
			t.Fatal("master end position diverged from sequential consumption")
		}

		var r RNG
		k := 0
		for i, n := range draws {
			r.SetState(states[i])
			for j := int32(0); j < n; j++ {
				if got := r.Uint64(); got != want[k] {
					t.Fatalf("consumer %d draw %d: substream produced %d, sequential produced %d",
						i, j, got, want[k])
				}
				k++
			}
		}
	})
}
