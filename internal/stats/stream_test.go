package stats

import "testing"

// TestSubStreamsMatchSequential proves the partitioning contract: replaying
// each substream for its declared draw count reproduces exactly the values
// one sequential generator would have produced, and the master lands on the
// same final state either way.
func TestSubStreamsMatchSequential(t *testing.T) {
	draws := []int32{0, 3, 1, 0, 0, 7, 2, 0, 5}

	seq := NewRNG(1234)
	var want []uint64
	for _, n := range draws {
		for j := int32(0); j < n; j++ {
			want = append(want, seq.Uint64())
		}
	}

	master := NewRNG(1234)
	states := SubStreams(master, draws, nil)
	if len(states) != len(draws) {
		t.Fatalf("got %d states for %d consumers", len(states), len(draws))
	}
	if master.State() != seq.State() {
		t.Fatal("master state diverged from sequential consumption")
	}

	var got []uint64
	var r RNG
	for i, n := range draws {
		r.SetState(states[i])
		for j := int32(0); j < n; j++ {
			got = append(got, r.Uint64())
		}
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("draw %d: substream produced %d, sequential produced %d", i, got[i], want[i])
		}
	}
}

// TestSubStreamsReuse proves the dst scratch contract (append semantics, no
// stale state leakage) and the empty-input edge.
func TestSubStreamsReuse(t *testing.T) {
	master := NewRNG(9)
	scratch := make([]RNGState, 0, 8)
	a := SubStreams(master, []int32{2, 2}, scratch[:0])
	first := a[0]
	b := SubStreams(master, []int32{1}, a[:0])
	if len(b) != 1 {
		t.Fatalf("len = %d", len(b))
	}
	if b[0] == first {
		t.Fatal("master did not advance between calls")
	}
	if got := SubStreams(master, nil, nil); len(got) != 0 {
		t.Fatalf("empty draws produced %d states", len(got))
	}
}
