package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 when empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Variance returns the population variance of xs, or 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the nearest-rank q-quantile of xs without mutating it.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	if q <= 0 {
		return cp[0]
	}
	if q >= 1 {
		return cp[len(cp)-1]
	}
	i := int(math.Ceil(q*float64(len(cp)))) - 1
	if i < 0 {
		i = 0
	}
	return cp[i]
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// TopShare returns the fraction of Sum(xs) contributed by the top `frac`
// proportion of entries (by value, descending). For example
// TopShare(spend, 0.10) answers "what share of all spend do the top 10% of
// advertisers account for?" — the concentration statistic behind Figure 4.
func TopShare(xs []float64, frac float64) float64 {
	if len(xs) == 0 || frac <= 0 {
		return 0
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Sort(sort.Reverse(sort.Float64Slice(cp)))
	total := Sum(cp)
	if total <= 0 {
		return 0
	}
	k := int(math.Ceil(frac * float64(len(cp))))
	if k > len(cp) {
		k = len(cp)
	}
	return Sum(cp[:k]) / total
}

// CumulativeShare returns the cumulative share of total contributed by
// advertisers in decreasing value order, evaluated at each of the given
// advertiser-proportion points (values in (0, 1]). This renders the curves
// of Figure 4 directly.
func CumulativeShare(xs []float64, props []float64) []Point {
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Sort(sort.Reverse(sort.Float64Slice(cp)))
	total := Sum(cp)
	out := make([]Point, 0, len(props))
	run := 0.0
	next := 0
	for i, v := range cp {
		run += v
		p := float64(i+1) / float64(len(cp))
		for next < len(props) && p >= props[next] {
			share := 0.0
			if total > 0 {
				share = run / total
			}
			out = append(out, Point{X: props[next], Y: share})
			next++
		}
	}
	for next < len(props) {
		share := 0.0
		if total > 0 {
			share = 1.0
		}
		out = append(out, Point{X: props[next], Y: share})
		next++
	}
	return out
}

// Gini returns the Gini coefficient of xs (0 = perfectly equal, 1 =
// maximally concentrated). Negative values are not supported.
func Gini(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	cp := make([]float64, n)
	copy(cp, xs)
	sort.Float64s(cp)
	var cum, weighted float64
	for i, x := range cp {
		cum += x
		weighted += float64(i+1) * x
	}
	if cum == 0 {
		return 0
	}
	return (2*weighted)/(float64(n)*cum) - float64(n+1)/float64(n)
}

// Pearson returns the Pearson correlation coefficient of the paired samples
// xs and ys, or 0 when undefined. It panics if the lengths differ.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Pearson length mismatch")
	}
	if len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
