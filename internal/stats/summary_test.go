package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanSumVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("mean %v", Mean(xs))
	}
	if Sum(xs) != 40 {
		t.Fatalf("sum %v", Sum(xs))
	}
	if Variance(xs) != 4 {
		t.Fatalf("variance %v", Variance(xs))
	}
	if StdDev(xs) != 2 {
		t.Fatalf("stddev %v", StdDev(xs))
	}
}

func TestEmptyStats(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || Median(nil) != 0 || Gini(nil) != 0 {
		t.Fatal("empty inputs must yield 0")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestMedianOddEven(t *testing.T) {
	if Median([]float64{1, 3, 2}) != 2 {
		t.Fatal("odd median")
	}
	// Nearest-rank: even-length median is the lower-middle element.
	if Median([]float64{1, 2, 3, 4}) != 2 {
		t.Fatal("even median (nearest rank)")
	}
}

func TestTopShare(t *testing.T) {
	xs := []float64{100, 1, 1, 1, 1, 1, 1, 1, 1, 1}
	got := TopShare(xs, 0.10) // top 1 of 10
	want := 100.0 / 109.0
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("TopShare %v, want %v", got, want)
	}
	if TopShare(xs, 1.0) != 1.0 {
		t.Fatal("TopShare(1.0) != 1")
	}
	if TopShare(nil, 0.5) != 0 {
		t.Fatal("TopShare(empty)")
	}
}

func TestTopShareMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && v >= 0 {
				xs = append(xs, v)
			}
		}
		prev := 0.0
		for frac := 0.1; frac <= 1.0; frac += 0.1 {
			s := TopShare(xs, frac)
			if s < prev-1e-9 || s < 0 || s > 1+1e-9 {
				return false
			}
			prev = s
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCumulativeShare(t *testing.T) {
	xs := []float64{50, 30, 15, 5}
	pts := CumulativeShare(xs, []float64{0.25, 0.5, 1.0})
	if len(pts) != 3 {
		t.Fatalf("len %d", len(pts))
	}
	if pts[0].Y != 0.5 || pts[1].Y != 0.8 || pts[2].Y != 1.0 {
		t.Fatalf("shares %v", pts)
	}
}

func TestCumulativeShareEmptyTotal(t *testing.T) {
	pts := CumulativeShare([]float64{0, 0}, []float64{0.5, 1})
	for _, p := range pts {
		if p.Y != 0 && p.Y != 1 {
			// all-zero input: shares are defined as 0 mid-way.
			t.Fatalf("unexpected share %v", p)
		}
	}
}

func TestGiniKnownValues(t *testing.T) {
	if g := Gini([]float64{1, 1, 1, 1}); math.Abs(g) > 1e-12 {
		t.Fatalf("equal distribution gini %v", g)
	}
	g := Gini([]float64{0, 0, 0, 100})
	if g < 0.7 || g > 0.76 { // (n-1)/n = 0.75 for n=4
		t.Fatalf("concentrated gini %v", g)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if r := Pearson(xs, ys); math.Abs(r-1) > 1e-12 {
		t.Fatalf("perfect correlation %v", r)
	}
	neg := []float64{8, 6, 4, 2}
	if r := Pearson(xs, neg); math.Abs(r+1) > 1e-12 {
		t.Fatalf("perfect anticorrelation %v", r)
	}
	if r := Pearson([]float64{1, 1}, []float64{2, 3}); r != 0 {
		t.Fatalf("degenerate correlation %v", r)
	}
}

func TestPearsonLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	Pearson([]float64{1}, []float64{1, 2})
}
