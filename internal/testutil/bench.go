package testutil

// Bench report files at the repo root (BENCH_cluster.json) hold an
// append-only JSON array of records, one per `make bench-*` run, each
// self-describing via its "bench" field. Appending rather than
// overwriting keeps cluster-bench and router-bench history side by side
// in one file so regressions are visible as a series, not a diff.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
)

// AppendBenchRecord appends record to the JSON array at path, creating
// the file when missing. A legacy single-object file (the pre-array
// format) is wrapped into an array first, so old reports survive the
// migration.
func AppendBenchRecord(path string, record interface{}) error {
	rec, err := json.Marshal(record)
	if err != nil {
		return fmt.Errorf("testutil: encode bench record: %w", err)
	}

	var records []json.RawMessage
	existing, err := os.ReadFile(path)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		// fresh file
	case err != nil:
		return fmt.Errorf("testutil: read bench file %s: %w", path, err)
	default:
		if err := json.Unmarshal(existing, &records); err != nil {
			// Legacy format: one bare object.
			var single json.RawMessage
			if err2 := json.Unmarshal(existing, &single); err2 != nil {
				return fmt.Errorf("testutil: bench file %s is neither array nor object: %w", path, err)
			}
			records = []json.RawMessage{single}
		}
	}
	records = append(records, rec)

	out, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
