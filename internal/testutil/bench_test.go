package testutil

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

type benchRec struct {
	Bench string `json:"bench"`
	N     int    `json:"n"`
}

func readRecords(t *testing.T, path string) []benchRec {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var recs []benchRec
	if err := json.Unmarshal(b, &recs); err != nil {
		t.Fatalf("bench file not an array: %v\n%s", err, b)
	}
	return recs
}

func TestAppendBenchRecordCreatesAndAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	if err := AppendBenchRecord(path, benchRec{Bench: "a", N: 1}); err != nil {
		t.Fatal(err)
	}
	if err := AppendBenchRecord(path, benchRec{Bench: "b", N: 2}); err != nil {
		t.Fatal(err)
	}
	recs := readRecords(t, path)
	if len(recs) != 2 || recs[0].Bench != "a" || recs[1].N != 2 {
		t.Fatalf("records = %+v", recs)
	}
}

func TestAppendBenchRecordMigratesLegacyObject(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	legacy := `{"bench": "cluster", "n": 9}` + "\n"
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := AppendBenchRecord(path, benchRec{Bench: "router", N: 1}); err != nil {
		t.Fatal(err)
	}
	recs := readRecords(t, path)
	if len(recs) != 2 || recs[0].Bench != "cluster" || recs[0].N != 9 || recs[1].Bench != "router" {
		t.Fatalf("migration mangled records: %+v", recs)
	}
}

func TestAppendBenchRecordRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := AppendBenchRecord(path, benchRec{}); err == nil {
		t.Fatal("garbage file accepted")
	}
}
