package testutil

import (
	"crypto/sha256"
	"fmt"
	"hash"
	"sort"
	"strconv"

	"repro/internal/dataset"
	"repro/internal/market"
	"repro/internal/platform"
	"repro/internal/sim"
)

// Digest is a compact fingerprint of one completed simulation: one hash
// per dataset (§3.1's customer, impression/click, and detection records,
// plus billing) and the headline counters in the clear. Two runs are
// behaviorally identical iff their digests are byte-identical; the
// golden regression tests pin these values under testdata/.
type Digest struct {
	// Fingerprint combines every dataset hash and the counters.
	Fingerprint string `json:"fingerprint"`

	Accounts   DatasetDigest `json:"accounts"`
	Activity   DatasetDigest `json:"activity"`
	Windows    DatasetDigest `json:"windows"`
	Clicks     DatasetDigest `json:"clicks"`
	Billing    DatasetDigest `json:"billing"`
	Detections DatasetDigest `json:"detections"`

	Counters Counters `json:"counters"`
}

// DatasetDigest is the fingerprint of one dataset: a record count (so a
// drifting digest immediately shows whether volume changed) and a
// truncated SHA-256 over the dataset's canonical encoding.
type DatasetDigest struct {
	Records int    `json:"records"`
	SHA256  string `json:"sha256"`
}

// Counters mirrors sim.Result's headline counters with stable JSON
// encoding (ShutdownsByStage keyed by stage name, which encoding/json
// sorts).
type Counters struct {
	Registrations      int            `json:"registrations"`
	FraudRegistrations int            `json:"fraudRegistrations"`
	Compromises        int            `json:"compromises"`
	Auctions           int64          `json:"auctions"`
	Impressions        int64          `json:"impressions"`
	Clicks             int64          `json:"clicks"`
	FraudClicks        int64          `json:"fraudClicks"`
	Spend              string         `json:"spend"`
	FraudSpend         string         `json:"fraudSpend"`
	RevenueLost        string         `json:"revenueLost"`
	ShutdownsByStage   map[string]int `json:"shutdownsByStage"`
}

// canonFloat renders a float so that the exact bit pattern round-trips:
// any change in accumulation order or arithmetic shows up in the digest.
func canonFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// digestWriter accumulates one dataset's canonical stream.
type digestWriter struct {
	h       hash.Hash
	records int
}

func newDigestWriter() *digestWriter { return &digestWriter{h: sha256.New()} }

func (d *digestWriter) record(format string, args ...interface{}) {
	d.records++
	fmt.Fprintf(d.h, format, args...)
	d.h.Write([]byte{'\n'})
}

func (d *digestWriter) done() DatasetDigest {
	return DatasetDigest{
		Records: d.records,
		SHA256:  fmt.Sprintf("%x", d.h.Sum(nil))[:16],
	}
}

// CollectorDigestSet fingerprints the datasets a Collector holds: the
// two impression/click shapes, the sample-window click counters, and the
// detection records. It is the comparison unit for replay equivalence —
// a Collector rebuilt from an event log must produce the identical set.
type CollectorDigestSet struct {
	Activity   DatasetDigest `json:"activity"`
	Windows    DatasetDigest `json:"windows"`
	Clicks     DatasetDigest `json:"clicks"`
	Detections DatasetDigest `json:"detections"`
}

// CollectorDigests canonically encodes every dataset in col, walking the
// tables in account-ID / collection order so the result is fully
// deterministic and independent of map iteration order and GOMAXPROCS.
func CollectorDigests(col *dataset.Collector) CollectorDigestSet {
	// Impression/click records, first shape: per-account weekly activity.
	activity := newDigestWriter()
	// Impression/click records, second shape: per-window aggregates with
	// position histograms, competition splits, campaign actions and the
	// account's bid/click match mixes.
	windows := newDigestWriter()
	for id := 0; id < col.NumTracked(); id++ {
		agg := col.Agg(platform.AccountID(id))
		if agg == nil {
			continue
		}
		for _, wk := range agg.Weeks {
			activity.record("%d|%d|%d|%d|%s", id, wk.Week, wk.Impressions, wk.Clicks, canonFloat(wk.Spend))
		}
		for wi, w := range agg.Windows {
			if w == nil {
				continue
			}
			windows.record("%d|%d|%d|%d|%s|%d|%d|%s|%v|%v|%d|%d|%d|%d",
				id, wi, w.Impressions, w.Clicks, canonFloat(w.Spend),
				w.InflImpressions, w.InflClicks, canonFloat(w.InflSpend),
				w.PosOrganic, w.PosInfluenced,
				w.AdsCreated, w.AdsModified, w.KwCreated, w.KwModified)
		}
		if agg.BidCount != [3]int64{} || agg.ClicksByMatch != [3]int64{} {
			windows.record("%d|bids|%v|%s,%s,%s|%v", id, agg.BidCount,
				canonFloat(agg.BidSum[0]), canonFloat(agg.BidSum[1]), canonFloat(agg.BidSum[2]),
				agg.ClicksByMatch)
		}
		if len(agg.MonthVerticalSpend) > 0 {
			keys := make([]int, 0, len(agg.MonthVerticalSpend))
			for k := range agg.MonthVerticalSpend {
				keys = append(keys, int(k))
			}
			sort.Ints(keys)
			for _, k := range keys {
				windows.record("%d|mv|%d|%s", id, k, canonFloat(agg.MonthVerticalSpend[int32(k)]))
			}
		}
	}

	// Sample-window click counters (Tables 3/4).
	clicks := newDigestWriter()
	byCountry := col.ClicksByCountry()
	countries := make([]string, 0, len(byCountry))
	for c := range byCountry {
		countries = append(countries, string(c))
	}
	sort.Strings(countries)
	for _, c := range countries {
		fs := byCountry[market.Country(c)]
		clicks.record("country|%s|%d|%d", c, fs.Fraud, fs.Nonfraud)
	}
	for m, fs := range col.ClicksByMatch() {
		clicks.record("match|%d|%d|%d", m, fs.Fraud, fs.Nonfraud)
	}

	// Fraud detection records, in collection order.
	detections := newDigestWriter()
	for _, rec := range col.Detections() {
		detections.record("%d|%s|%s|%s", rec.Account, canonFloat(float64(rec.At)), rec.Stage, rec.Reason)
	}

	return CollectorDigestSet{
		Activity:   activity.done(),
		Windows:    windows.done(),
		Clicks:     clicks.done(),
		Detections: detections.done(),
	}
}

// DigestResult fingerprints a completed run's datasets. The collector
// tables go through CollectorDigests; the platform-held tables (accounts,
// billing) are encoded here. Everything walks in account-ID / collection
// order, so the digest is fully deterministic.
func DigestResult(res *sim.Result) Digest {
	p := res.Platform

	// Customer and ad records: the full account table.
	accounts := newDigestWriter()
	for _, a := range p.Accounts() {
		accounts.record("%d|%s|%s|%s|%s|%t|%t|%d|%s|%s|%s|%s|%s|%d|%d|%d|%d|%d|%d|%d|%s",
			a.ID, canonFloat(float64(a.Created)), a.Country, a.Language, a.Currency,
			a.Fraud, a.StolenPayment, a.Generation, a.PrimaryVertical, a.Status,
			canonFloat(float64(a.ShutdownAt)), a.ShutdownReason, canonFloat(float64(a.FirstAdAt)),
			a.AdsCreated, a.AdsModified, a.KeywordsCreated, a.KeywordsModified,
			len(a.Ads), a.Impressions, a.Clicks, canonFloat(a.Spend))
	}

	colSet := CollectorDigests(res.Collector)

	// Billing: the ledger per account plus platform totals.
	billing := newDigestWriter()
	ledger := p.Ledger()
	for id := 0; id < p.NumAccounts(); id++ {
		aid := platform.AccountID(id)
		billed, uncollected := ledger.Billed(aid), ledger.Uncollected(aid)
		if billed == 0 && uncollected == 0 {
			continue
		}
		billing.record("%d|%s|%s", id, canonFloat(billed), canonFloat(uncollected))
	}
	billing.record("totals|%s|%s", canonFloat(ledger.TotalBilled()), canonFloat(ledger.TotalLost()))

	d := Digest{
		Accounts:   accounts.done(),
		Activity:   colSet.Activity,
		Windows:    colSet.Windows,
		Clicks:     colSet.Clicks,
		Billing:    billing.done(),
		Detections: colSet.Detections,
		Counters:   CountersOf(res),
	}
	d.Fingerprint = fingerprint(d)
	return d
}

// CountersOf extracts the headline counters in stable form.
func CountersOf(res *sim.Result) Counters {
	stages := make(map[string]int, len(res.ShutdownsByStage))
	for st, n := range res.ShutdownsByStage {
		stages[st.String()] = n
	}
	return Counters{
		Registrations:      res.Registrations,
		FraudRegistrations: res.FraudRegistrations,
		Compromises:        res.Compromises,
		Auctions:           res.Auctions,
		Impressions:        res.Impressions,
		Clicks:             res.Clicks,
		FraudClicks:        res.FraudClicks,
		Spend:              canonFloat(res.Spend),
		FraudSpend:         canonFloat(res.FraudSpend),
		RevenueLost:        canonFloat(res.RevenueLost),
		ShutdownsByStage:   stages,
	}
}

// fingerprint combines the dataset digests and counters into one value.
func fingerprint(d Digest) string {
	h := sha256.New()
	counters, _ := MarshalStable(d.Counters)
	fmt.Fprintf(h, "%s|%s|%s|%s|%s|%s|%s",
		d.Accounts.SHA256, d.Activity.SHA256, d.Windows.SHA256,
		d.Clicks.SHA256, d.Billing.SHA256, d.Detections.SHA256, counters)
	return fmt.Sprintf("%x", h.Sum(nil))[:16]
}
