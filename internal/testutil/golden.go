// Package testutil is the correctness-verification toolkit behind the
// repo's golden-dataset regression tests: stable JSON encoding, golden
// file comparison with diff-on-mismatch and a shared -update-golden
// flag, and a canonical digest that fingerprints a simulation's datasets
// (see digest.go). Every future refactor of the hot paths — sharding,
// batching, async serving — must leave the golden digests byte-identical
// or regenerate them deliberately; see README.md in this directory for
// the workflow.
package testutil

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// updateGolden is registered once per test binary; run
//
//	make golden
//
// (or `go test <pkg> -run Golden -update-golden`) to rewrite fixtures.
var updateGolden = flag.Bool("update-golden", false,
	"rewrite golden files under testdata/ with the current output instead of comparing")

// Updating reports whether the test run is regenerating golden files.
func Updating() bool { return *updateGolden }

// Golden compares got against the golden file at path, failing with a
// line diff on mismatch. With -update-golden it (re)writes the file
// instead and never fails.
func Golden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatalf("testutil: create golden dir: %v", err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatalf("testutil: write golden %s: %v", path, err)
		}
		t.Logf("wrote golden %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("golden file %s does not exist; generate it with `make golden` "+
			"(go test -run Golden -update-golden)", path)
	}
	if err != nil {
		t.Fatalf("testutil: read golden %s: %v", path, err)
	}
	if !bytes.Equal(want, got) {
		t.Errorf("output differs from golden %s (regenerate deliberately with `make golden`):\n%s",
			path, Diff(string(want), string(got)))
	}
}

// GoldenString is Golden for string output.
func GoldenString(t *testing.T, path, got string) {
	t.Helper()
	Golden(t, path, []byte(got))
}

// GoldenJSON stable-encodes v and compares it against the golden file.
func GoldenJSON(t *testing.T, path string, v interface{}) {
	t.Helper()
	b, err := MarshalStable(v)
	if err != nil {
		t.Fatalf("testutil: encode golden value: %v", err)
	}
	Golden(t, path, b)
}

// MarshalStable encodes v as indented JSON with a trailing newline.
// encoding/json sorts map keys, so the encoding is deterministic for any
// value whose slices are deterministically ordered.
func MarshalStable(v interface{}) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// maxDiffLines caps how much of a mismatch Diff renders before eliding.
const maxDiffLines = 60

// Diff renders a compact line-oriented diff (want vs got) based on a
// longest-common-subsequence alignment. Golden files are small, so the
// quadratic alignment is fine; output is capped at maxDiffLines.
func Diff(want, got string) string {
	a := strings.Split(want, "\n")
	b := strings.Split(got, "\n")

	// LCS table.
	lcs := make([][]int32, len(a)+1)
	for i := range lcs {
		lcs[i] = make([]int32, len(b)+1)
	}
	for i := len(a) - 1; i >= 0; i-- {
		for j := len(b) - 1; j >= 0; j-- {
			if a[i] == b[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}

	var out []string
	emit := func(mark string, lineno int, line string) {
		out = append(out, fmt.Sprintf("%s%4d| %s", mark, lineno, line))
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) && len(out) <= maxDiffLines {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case lcs[i+1][j] >= lcs[i][j+1]:
			emit("-", i+1, a[i])
			i++
		default:
			emit("+", j+1, b[j])
			j++
		}
	}
	for ; i < len(a) && len(out) <= maxDiffLines; i++ {
		emit("-", i+1, a[i])
	}
	for ; j < len(b) && len(out) <= maxDiffLines; j++ {
		emit("+", j+1, b[j])
	}
	if len(out) > maxDiffLines {
		out = append(out[:maxDiffLines], fmt.Sprintf("... (diff truncated at %d lines)", maxDiffLines))
	}
	if len(out) == 0 {
		return "(contents equal after newline split — check trailing bytes)"
	}
	return strings.Join(out, "\n")
}
