package testutil

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestMarshalStableDeterministic(t *testing.T) {
	v := map[string]int{"zulu": 1, "alpha": 2, "mike": 3}
	a, err := MarshalStable(v)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		b, err := MarshalStable(map[string]int{"mike": 3, "zulu": 1, "alpha": 2})
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Fatalf("unstable encoding:\n%s\nvs\n%s", a, b)
		}
	}
	if !strings.HasSuffix(string(a), "\n") {
		t.Fatal("missing trailing newline")
	}
	// Keys must come out sorted.
	if strings.Index(string(a), "alpha") > strings.Index(string(a), "zulu") {
		t.Fatalf("keys not sorted:\n%s", a)
	}
}

func TestGoldenRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "x.golden")
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("hello\nworld\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	Golden(t, path, []byte("hello\nworld\n")) // must not fail
}

func TestGoldenMismatchFails(t *testing.T) {
	if Updating() {
		t.Skip("comparison semantics are bypassed under -update-golden")
	}
	path := filepath.Join(t.TempDir(), "x.golden")
	if err := os.WriteFile(path, []byte("a\nb\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	mock := &testing.T{}
	Golden(mock, path, []byte("a\nc\n"))
	if !mock.Failed() {
		t.Fatal("mismatch did not fail the test")
	}
}

func TestDiff(t *testing.T) {
	d := Diff("a\nb\nc", "a\nx\nc")
	if !strings.Contains(d, "-   2| b") || !strings.Contains(d, "+   2| x") {
		t.Fatalf("diff missing changed lines:\n%s", d)
	}
	if strings.Contains(d, "| a") || strings.Contains(d, "| c") {
		t.Fatalf("diff includes unchanged lines:\n%s", d)
	}

	// Pure insertion and pure deletion.
	if d := Diff("a\nb", "a\nb\nc"); !strings.Contains(d, "+   3| c") {
		t.Fatalf("insertion diff:\n%s", d)
	}
	if d := Diff("a\nb\nc", "a\nc"); !strings.Contains(d, "-   2| b") {
		t.Fatalf("deletion diff:\n%s", d)
	}

	// Truncation on huge diffs.
	var sb strings.Builder
	for i := 0; i < 500; i++ {
		sb.WriteString("line\n")
	}
	d = Diff("", sb.String())
	if !strings.Contains(d, "truncated") {
		t.Fatal("huge diff not truncated")
	}
	if got := len(strings.Split(d, "\n")); got > maxDiffLines+1 {
		t.Fatalf("diff has %d lines, cap is %d", got, maxDiffLines+1)
	}
}

func TestCanonFloat(t *testing.T) {
	cases := map[float64]string{
		0:     "0",
		1.5:   "1.5",
		-1:    "-1",
		1e300: "1e+300",
	}
	for v, want := range cases {
		if got := canonFloat(v); got != want {
			t.Fatalf("canonFloat(%v) = %q, want %q", v, got, want)
		}
	}
	// Nearby floats must render distinctly (exact round-trip precision).
	a, b := 0.1, 0.2
	if canonFloat(a+b) == canonFloat(0.3) {
		t.Fatal("canonFloat collapsed distinct floats")
	}
}
