// Package verticals defines the advertising vertical taxonomy the paper's
// behavioral analysis is organized around: the "dubious" verticals that
// fraudulent advertisers concentrate in (§5.2.1 — techsupport, downloads,
// luxury counterfeits, miracle supplements, impersonation, phishing, …) and
// the long tail of legitimate verticals that have essentially no fraud
// overlap (§6: "Most verticals have no overlap with fraudulent advertising
// at all").
//
// Each vertical carries the economic parameters that drive behavior in the
// simulator: keyword universe size, typical product price (techsupport
// calls cost "hundreds of dollars"; §4.2 notes top fraud CPCs in the tens
// of dollars on >$100 products), relative bid level, legitimate-advertiser
// density (competition), and a fraud-appeal weight that determines which
// verticals fraud archetypes select.
package verticals

// Vertical names a market segment. Values are stable identifiers used in
// datasets and reports.
type Vertical string

// Dubious verticals: the categories Figure 8 tracks plus phishing (§5.2.2).
const (
	TechSupport   Vertical = "techsupport"
	Downloads     Vertical = "downloads"
	Luxury        Vertical = "luxury"
	Flights       Vertical = "flights"
	Wrinkles      Vertical = "wrinkles"
	Impersonation Vertical = "impersonation"
	WeightLoss    Vertical = "weightloss"
	Shopping      Vertical = "shopping"
	Games         Vertical = "games"
	Chronic       Vertical = "chronic"
	Phishing      Vertical = "phishing"
)

// Info describes one vertical's static parameters.
type Info struct {
	Name Vertical

	// Dubious marks verticals fraudulent advertisers participate in. The
	// organic/influenced comparisons of Figures 14–17 are restricted to
	// dubious verticals.
	Dubious bool

	// FraudAppeal is the relative probability that a fraud archetype
	// selects this vertical, before policy modulation. Zero for
	// non-dubious verticals.
	FraudAppeal float64

	// ProductPrice is the typical sale price (USD) of what the vertical
	// sells; it bounds how much an advertiser can rationally pay per
	// click.
	ProductPrice float64

	// BidLevel is the vertical's typical maximum-bid level relative to the
	// US default bid (1.0). Competitive, high-value verticals bid above
	// default.
	BidLevel float64

	// LegitDensity is the relative number of legitimate advertisers
	// operating in the vertical; it controls auction competitiveness.
	// "Verticals engaged by fraudsters are often highly competitive" (§1).
	LegitDensity float64

	// QueryShare is the vertical's share of overall query volume. Shares
	// sum to 1 across All().
	QueryShare float64

	// Keywords is the number of distinct keywords in the vertical's
	// universe.
	Keywords int

	// BaseTerms seed the keyword/ad-copy generator for the vertical.
	BaseTerms []string
}

var dubious = []Info{
	{TechSupport, true, 4.0, 300, 3.0, 0.7, 0.010, 400,
		[]string{"printer support", "router help", "antivirus support", "accounting software help", "tech support", "helpline number", "computer repair", "email support"}},
	{Downloads, true, 5.0, 15, 0.6, 0.8, 0.030, 900,
		[]string{"free download", "software download", "video player", "pdf reader", "media converter", "driver update", "discord", "browser download"}},
	{Luxury, true, 2.5, 150, 1.2, 0.8, 0.012, 500,
		[]string{"designer sunglasses", "coach bags", "outlet sale", "designer handbags", "luxury watches", "factory outlet", "purses sale"}},
	{Flights, true, 1.2, 400, 1.8, 1.6, 0.020, 400,
		[]string{"cheap flights", "airline tickets", "last minute flights", "flight deals", "discount airfare"}},
	{Wrinkles, true, 2.0, 90, 1.5, 0.8, 0.008, 300,
		[]string{"anti wrinkle cream", "skin care", "anti aging serum", "wrinkle remover", "face cream"}},
	{Impersonation, true, 2.2, 40, 0.9, 0.9, 0.030, 700,
		[]string{"youtube", "videos", "news", "online shopping", "social network", "streaming", "search", "target store", "walmart hours"}},
	{WeightLoss, true, 2.0, 70, 1.4, 0.8, 0.010, 350,
		[]string{"weight loss supplements", "diet pills", "fat burner", "garcinia", "lose weight fast"}},
	{Shopping, true, 1.5, 60, 1.0, 1.2, 0.050, 800,
		[]string{"online shopping", "deals", "coupons", "discount codes", "best price", "buy online"}},
	{Games, true, 1.3, 25, 0.7, 0.8, 0.025, 600,
		[]string{"free games", "online games", "game download", "mmorpg", "browser games", "game cheats"}},
	{Chronic, true, 1.0, 120, 1.6, 0.6, 0.006, 250,
		[]string{"pain relief", "chronic pain", "joint supplement", "miracle cure", "natural remedy"}},
	{Phishing, true, 0.4, 500, 1.1, 0.5, 0.004, 200,
		[]string{"bank login", "account verify", "credit union online", "webmail login", "password reset"}},
}

// legitNames populates the long tail of clean verticals. None of these
// receive fraud campaigns, so advertisers within them are "essentially
// unaffected by fraudulent advertisers" (§6).
var legitNames = []struct {
	name  Vertical
	share float64
	bid   float64
	terms []string
}{
	{"insurance", 0.045, 4.0, []string{"car insurance", "life insurance quotes", "home insurance", "cheap insurance"}},
	{"finance", 0.040, 3.5, []string{"mortgage rates", "personal loan", "credit card offers", "refinance"}},
	{"legal", 0.020, 4.5, []string{"personal injury lawyer", "divorce attorney", "legal advice"}},
	{"auto", 0.045, 1.5, []string{"new cars", "used cars", "car dealership", "auto parts"}},
	{"realestate", 0.035, 2.0, []string{"homes for sale", "apartments for rent", "real estate agent"}},
	{"travel", 0.050, 1.6, []string{"hotels", "vacation packages", "resort deals", "car rental"}},
	{"education", 0.035, 2.2, []string{"online degree", "college courses", "certification", "mba program"}},
	{"medical", 0.040, 2.5, []string{"dentist near me", "urgent care", "physical therapy", "dermatologist"}},
	{"retail", 0.080, 0.9, []string{"furniture", "mattress sale", "appliances", "home decor"}},
	{"electronics", 0.060, 1.1, []string{"laptop deals", "smartphone", "tv sale", "headphones"}},
	{"fashion", 0.055, 0.8, []string{"dresses", "mens shoes", "jewelry", "watches"}},
	{"food", 0.040, 0.7, []string{"pizza delivery", "meal kits", "restaurant near me", "recipes"}},
	{"fitness", 0.030, 1.0, []string{"gym membership", "protein powder", "home gym", "yoga classes"}},
	{"hosting", 0.015, 2.8, []string{"web hosting", "domain registration", "vps server", "website builder"}},
	{"software", 0.035, 2.4, []string{"crm software", "project management tool", "accounting software", "antivirus"}},
	{"b2b", 0.025, 3.0, []string{"office supplies", "business insurance", "payroll services", "crm"}},
	{"jobs", 0.030, 1.4, []string{"jobs hiring", "resume builder", "work from home", "part time jobs"}},
	{"dating", 0.020, 1.8, []string{"dating sites", "meet singles", "matchmaking"}},
	{"pets", 0.025, 0.8, []string{"dog food", "pet insurance", "veterinarian", "cat supplies"}},
	{"home", 0.035, 1.3, []string{"plumber", "hvac repair", "roofing contractor", "house cleaning"}},
	{"garden", 0.020, 0.7, []string{"lawn care", "garden supplies", "landscaping"}},
	{"baby", 0.020, 0.9, []string{"baby clothes", "strollers", "car seats", "diapers"}},
	{"books", 0.015, 0.5, []string{"books online", "textbooks", "audiobooks"}},
	{"music", 0.020, 0.6, []string{"concert tickets", "music streaming", "guitar lessons"}},
	{"sports", 0.030, 0.8, []string{"sports tickets", "golf clubs", "running shoes", "fishing gear"}},
	{"gifts", 0.025, 0.9, []string{"flowers delivery", "gift baskets", "personalized gifts", "greeting cards"}},
	{"telecom", 0.025, 2.0, []string{"cell phone plans", "internet providers", "cable tv deals"}},
	{"energy", 0.010, 1.7, []string{"solar panels", "electricity rates", "energy comparison"}},
}

var (
	all     []Info
	indexOf map[Vertical]int
)

func init() {
	all = append(all, dubious...)
	for _, l := range legitNames {
		all = append(all, Info{
			Name:         l.name,
			Dubious:      false,
			ProductPrice: 120,
			BidLevel:     l.bid,
			LegitDensity: 2.0,
			QueryShare:   l.share,
			Keywords:     600,
			BaseTerms:    l.terms,
		})
	}
	// Normalize query shares to sum to exactly 1.
	total := 0.0
	for _, v := range all {
		total += v.QueryShare
	}
	for i := range all {
		all[i].QueryShare /= total
	}
	indexOf = make(map[Vertical]int, len(all))
	for i, v := range all {
		indexOf[v.Name] = i
	}
}

// All returns every vertical. The returned slice must not be modified.
func All() []Info { return all }

// Dubious returns only the dubious (fraud-targeted) verticals.
func Dubious() []Info {
	out := make([]Info, 0, len(dubious))
	for _, v := range all {
		if v.Dubious {
			out = append(out, v)
		}
	}
	return out
}

// Get returns the Info for a vertical name; ok reports whether it exists.
func Get(name Vertical) (Info, bool) {
	for _, v := range all {
		if v.Name == name {
			return v, true
		}
	}
	return Info{}, false
}

// IsDubious reports whether the named vertical is fraud-targeted.
func IsDubious(name Vertical) bool {
	v, ok := Get(name)
	return ok && v.Dubious
}

// Index returns the position of the vertical in All(), or -1.
func Index(name Vertical) int {
	if i, ok := indexOf[name]; ok {
		return i
	}
	return -1
}
