package verticals

import (
	"math"
	"testing"
)

func TestQuerySharesNormalized(t *testing.T) {
	total := 0.0
	for _, v := range All() {
		if v.QueryShare <= 0 {
			t.Fatalf("%s non-positive query share", v.Name)
		}
		total += v.QueryShare
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("query shares sum to %v", total)
	}
}

func TestDubiousSubset(t *testing.T) {
	d := Dubious()
	if len(d) != 11 {
		t.Fatalf("want 11 dubious verticals, got %d", len(d))
	}
	names := map[Vertical]bool{}
	for _, v := range d {
		if !v.Dubious {
			t.Fatalf("%s in Dubious() but not dubious", v.Name)
		}
		names[v.Name] = true
	}
	for _, want := range []Vertical{TechSupport, Downloads, Luxury, Flights, Wrinkles,
		Impersonation, WeightLoss, Shopping, Games, Chronic, Phishing} {
		if !names[want] {
			t.Fatalf("missing dubious vertical %s", want)
		}
	}
}

func TestGetAndIndexAgree(t *testing.T) {
	for i, v := range All() {
		got, ok := Get(v.Name)
		if !ok || got.Name != v.Name {
			t.Fatalf("Get(%s) failed", v.Name)
		}
		if Index(v.Name) != i {
			t.Fatalf("Index(%s) = %d, want %d", v.Name, Index(v.Name), i)
		}
	}
	if _, ok := Get("nope"); ok {
		t.Fatal("Get of unknown vertical succeeded")
	}
	if Index("nope") != -1 {
		t.Fatal("Index of unknown vertical")
	}
}

func TestIsDubious(t *testing.T) {
	if !IsDubious(TechSupport) || !IsDubious(Phishing) {
		t.Fatal("dubious verticals misclassified")
	}
	if IsDubious("insurance") || IsDubious("nope") {
		t.Fatal("clean/unknown verticals misclassified")
	}
}

func TestFraudAppealOnlyOnDubious(t *testing.T) {
	for _, v := range All() {
		if !v.Dubious && v.FraudAppeal != 0 {
			t.Fatalf("clean vertical %s has fraud appeal %v", v.Name, v.FraudAppeal)
		}
		if v.Dubious && v.FraudAppeal <= 0 {
			t.Fatalf("dubious vertical %s has no fraud appeal", v.Name)
		}
	}
}

func TestEveryVerticalHasBaseTerms(t *testing.T) {
	for _, v := range All() {
		if len(v.BaseTerms) == 0 {
			t.Fatalf("%s has no base terms", v.Name)
		}
		if v.Keywords < len(v.BaseTerms) {
			t.Fatalf("%s keyword budget %d below base terms %d", v.Name, v.Keywords, len(v.BaseTerms))
		}
		if v.BidLevel <= 0 || v.ProductPrice <= 0 {
			t.Fatalf("%s has non-positive economics", v.Name)
		}
	}
}

func TestTechSupportEconomics(t *testing.T) {
	ts, _ := Get(TechSupport)
	// Techsupport sells hundreds-of-dollars support calls at premium bid
	// levels (§5.2.1); the simulation depends on it being the high-value
	// fraud vertical.
	if ts.ProductPrice < 200 || ts.BidLevel < 2 {
		t.Fatalf("techsupport economics too weak: price=%v bid=%v", ts.ProductPrice, ts.BidLevel)
	}
}

func TestDownloadsIsTopFraudAppeal(t *testing.T) {
	dl, _ := Get(Downloads)
	for _, v := range Dubious() {
		if v.Name != Downloads && v.Name != TechSupport && v.FraudAppeal > dl.FraudAppeal {
			t.Fatalf("%s appeal %v exceeds downloads %v — downloads should lead clicks (§5.2.1)",
				v.Name, v.FraudAppeal, dl.FraudAppeal)
		}
	}
}
