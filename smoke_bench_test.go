package repro

// Benchmark smoke gate: every benchmark in the suite is executed for
// exactly one iteration inside a regular test, so `go test ./...` proves
// the benchmark bodies still compile AND run — a broken benchmark
// otherwise goes unnoticed until someone next profiles. The gate
// substitutes a tiny dataset for the medium-scale benchmark environment
// and skips itself whenever real benchmarks were requested, so it never
// contaminates actual measurements.

import (
	"flag"
	"testing"
)

// smokeBenchmarks lists every benchmark the gate drives.
var smokeBenchmarks = map[string]func(*testing.B){
	"DatasetBuildSmall":            BenchmarkDatasetBuildSmall,
	"EventLogAppend":               BenchmarkEventLogAppend,
	"EventLogReplay":               BenchmarkEventLogReplay,
	"Fig1RegistrationFraudShare":   BenchmarkFig1RegistrationFraudShare,
	"Table1FraudCountries":         BenchmarkTable1FraudCountries,
	"Fig2LifetimeCDF":              BenchmarkFig2LifetimeCDF,
	"Fig3WeeklyActivity":           BenchmarkFig3WeeklyActivity,
	"Fig4Concentration":            BenchmarkFig4Concentration,
	"Fig5ImpressionRates":          BenchmarkFig5ImpressionRates,
	"Fig6RateVsClicks":             BenchmarkFig6RateVsClicks,
	"Fig7AdsKeywords":              BenchmarkFig7AdsKeywords,
	"Fig8Verticals":                BenchmarkFig8Verticals,
	"Table2SampleAds":              BenchmarkTable2SampleAds,
	"Table3ClickGeo":               BenchmarkTable3ClickGeo,
	"Table4MatchTypes":             BenchmarkTable4MatchTypes,
	"Fig9BiddingStyle":             BenchmarkFig9BiddingStyle,
	"Fig10CompetitionImpressions":  BenchmarkFig10CompetitionImpressions,
	"Fig11CompetitionSpend":        BenchmarkFig11CompetitionSpend,
	"Fig12PositionNonfraud":        BenchmarkFig12PositionNonfraud,
	"Fig13PositionFraud":           BenchmarkFig13PositionFraud,
	"Fig14CTRNonfraud":             BenchmarkFig14CTRNonfraud,
	"Fig15CPCNonfraud":             BenchmarkFig15CPCNonfraud,
	"Fig16CTRFraud":                BenchmarkFig16CTRFraud,
	"Fig17CPCFraud":                BenchmarkFig17CPCFraud,
	"SubsetBattery":                BenchmarkSubsetBattery,
	"AblationKeywordPockets":       BenchmarkAblationKeywordPockets,
	"AblationPolicyBan":            BenchmarkAblationPolicyBan,
	"AblationRecidivism":           BenchmarkAblationRecidivism,
	"AblationDetectionImprovement": BenchmarkAblationDetectionImprovement,
}

func TestBenchmarkSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every benchmark once")
	}
	if f := flag.Lookup("test.bench"); f != nil && f.Value.String() != "" {
		// A real benchmark run is in flight: do not pre-seed the shared
		// benchmark dataset with the tiny smoke environment or clamp the
		// iteration budget.
		t.Skip("-bench requested; smoke gate stands down")
	}

	// testing.Benchmark honors -test.benchtime; clamp it to exactly one
	// iteration for the gate and restore whatever was set before.
	bt := flag.Lookup("test.benchtime")
	if bt == nil {
		t.Fatal("no test.benchtime flag")
	}
	prev := bt.Value.String()
	if err := flag.Set("test.benchtime", "1x"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := flag.Set("test.benchtime", prev); err != nil {
			t.Errorf("restoring test.benchtime: %v", err)
		}
	}()

	// Pre-seed the shared benchmark environment with a tiny dataset so
	// the gate exercises every experiment body without paying for the
	// medium-scale simulation.
	benchState.once.Do(func() {
		cfg := SmallConfig()
		cfg.Seed = 7
		cfg.Days = 120
		cfg.QueriesPerDay = 800
		cfg.RegistrationsPerDay = 10
		cfg.InitialLegit = 250
		benchState.env = NewEnv(Run(cfg), 500, 1)
	})
	ablationSmoke = true
	defer func() { ablationSmoke = false }()

	for name, fn := range smokeBenchmarks {
		fn := fn
		t.Run(name, func(t *testing.T) {
			r := testing.Benchmark(fn)
			if r.N < 1 {
				t.Fatalf("benchmark did not iterate (N=%d)", r.N)
			}
		})
	}
}
